"""Sparse-native matrix assembly: fixed symbolic pattern + flat data.

Dense assembly writes every Newton iteration into an ``(n, n)`` matrix —
O(n^2) memory traffic no matter how sparse the circuit is.  The sparse
assembly path builds the *symbolic* sparsity structure exactly once at
compile time and then fills a flat nnz-length data array per iteration:

* :class:`SparsityPattern` deduplicates every stamp slot the compiled
  circuit can ever touch (linear stamps, vectorized BJT-group lanes,
  scalar nonlinear elements, the gshunt diagonal) into a fixed CSC
  structure, and maps any ``(row, col)`` stamp slot to its position in
  the shared ``data`` array.  Ground / dummy slots (index ``size``) map
  to a trailing scratch position that is never read — the same trick the
  dense buffers play with their extra row/column.
* :class:`PatternMatrix` is the nnz-length value array bound to a
  pattern.  It quacks like the small corner of ``ndarray`` the analyses
  actually use (scalar and fancy ``[row, col]`` access, ``alpha * C``,
  ``G += ...``, ``copy``), so :class:`~repro.spice.mna.LoadContext` and
  the Newton loops run unchanged on top of it.

Wrapping the data array back into ``scipy.sparse.csc_matrix`` is a
zero-copy header operation, which is what lets
:class:`~repro.spice.engine.SparseLUSolver` factorize without ever
scanning a dense matrix.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError

try:
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - scipy is present in CI
    _sp = None

__all__ = ["SparsityPattern", "PatternMatrix"]


class SparsityPattern:
    """Deduplicated CSC structure over a set of stamp slots.

    ``rows``/``cols`` list every slot that may ever receive a stamp;
    entries at the dummy index ``size`` (ground-mapped lanes) are kept
    out of the structure but still get a position — the trailing scratch
    slot ``nnz`` — so vectorized scatters need no masking.

    The structure is immutable after construction; every assembly reuses
    it (that reuse is the "symbolic analysis" the solver no longer pays
    per factorization).
    """

    def __init__(self, size: int, rows, cols):
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        cols = np.asarray(cols, dtype=np.intp).reshape(-1)
        if rows.shape != cols.shape:
            raise AnalysisError("sparsity pattern rows/cols length mismatch")
        if rows.size and (rows.min() < 0 or cols.min() < 0):
            raise AnalysisError("sparsity pattern got a negative index")
        self.size = int(size)
        dummy = (rows >= size) | (cols >= size)
        keys = cols[~dummy] * np.intp(size) + rows[~dummy]
        #: Sorted unique ``col*size + row`` keys — CSC (column-major) order.
        self._keys = np.unique(keys)
        nnz = int(self._keys.size)
        self.nnz = nnz
        #: CSC row indices / column pointers of the deduplicated structure.
        self.indices = (self._keys % size).astype(np.int32)
        self.indptr = np.searchsorted(
            self._keys // size, np.arange(size + 1)
        ).astype(np.int32)
        #: Data positions of the diagonal (present for every unknown; the
        #: engine seeds the pattern with the full diagonal so gshunt
        #: regularization always has a slot).
        self._diag_positions: np.ndarray | None = None
        self._scalar_cache: dict[tuple[int, int], int] = {}

    def positions(self, rows, cols) -> np.ndarray:
        """Data positions of the given slots (vectorized).

        Dummy slots (row or col ``>= size``) map to the scratch position
        ``nnz``.  A structurally absent in-range slot raises — silently
        dropping a stamp would corrupt the physics.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        dummy = (rows >= self.size) | (cols >= self.size)
        keys = np.where(dummy, self._keys[0] if self.nnz else 0,
                        cols * np.intp(self.size) + rows)
        pos = np.searchsorted(self._keys, keys)
        np.minimum(pos, max(self.nnz - 1, 0), out=pos)
        missing = ~dummy & (
            (self.nnz == 0) | (self._keys[pos] != keys)
        )
        if np.any(missing):
            k = int(np.argmax(missing))
            raise AnalysisError(
                f"stamp slot ({int(rows.reshape(-1)[k] if rows.ndim else rows)}, "
                f"{int(cols.reshape(-1)[k] if cols.ndim else cols)}) is outside "
                "the compiled sparsity pattern (circuit changed after compile?)"
            )
        return np.where(dummy, self.nnz, pos).astype(np.intp)

    def stamp_positions(self, rows, cols) -> tuple[np.ndarray, np.ndarray]:
        """Scatter positions for a ground-aware element stamp.

        Like :meth:`positions`, but entries whose row or column is
        negative (the ground reference) are dropped rather than
        rejected — mirroring how element stamps skip grounded
        terminals.  Returns ``(positions, keep)`` where ``keep`` is the
        boolean mask of surviving entries, so callers can filter their
        per-entry stamp values identically.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        keep = (rows >= 0) & (cols >= 0)
        return self.positions(rows[keep], cols[keep]), keep

    def position(self, row: int, col: int) -> int:
        """Data position of one slot (cached scalar fast path)."""
        key = (row, col)
        pos = self._scalar_cache.get(key)
        if pos is None:
            pos = int(self.positions(np.array([row]), np.array([col]))[0])
            self._scalar_cache[key] = pos
        return pos

    @property
    def diag_positions(self) -> np.ndarray:
        """Data positions of the full diagonal ``(i, i)``."""
        if self._diag_positions is None:
            diag = np.arange(self.size, dtype=np.intp)
            self._diag_positions = self.positions(diag, diag)
        return self._diag_positions

    def matrix(self, data: np.ndarray | None = None) -> "PatternMatrix":
        """A :class:`PatternMatrix` over ``data`` (fresh zeros if None)."""
        if data is None:
            data = np.zeros(self.nnz + 1)
        return PatternMatrix(self, data)

    def csc(self, data: np.ndarray):
        """Zero-copy ``csc_matrix`` header over an nnz-length data array.

        ``data`` may be length ``nnz`` or ``nnz + 1`` (with the trailing
        scratch slot); only the first ``nnz`` values enter the matrix.
        """
        if _sp is None:  # pragma: no cover - scipy is present in CI
            raise AnalysisError("sparse assembly requires scipy")
        return _sp.csc_matrix(
            (data[: self.nnz], self.indices, self.indptr),
            shape=(self.size, self.size), copy=False,
        )


class PatternMatrix:
    """nnz-length value array that behaves like the matrix it encodes.

    ``data`` has ``pattern.nnz + 1`` entries: the structural values in
    CSC order plus one trailing scratch slot absorbing ground-lane
    scatters (never read).  Supports exactly the operations the analyses
    perform on a Jacobian — anything else should go through
    :meth:`toarray` explicitly.
    """

    __slots__ = ("pattern", "data")

    def __init__(self, pattern: SparsityPattern, data: np.ndarray):
        if data.shape[-1] not in (pattern.nnz, pattern.nnz + 1):
            raise AnalysisError(
                f"pattern data length {data.shape[-1]} does not match "
                f"nnz {pattern.nnz}"
            )
        self.pattern = pattern
        self.data = data

    @property
    def values(self) -> np.ndarray:
        """The structural values (scratch slot excluded)."""
        return self.data[: self.pattern.nnz]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.pattern.size, self.pattern.size)

    @property
    def dtype(self):
        return self.data.dtype

    # -- element access (LoadContext.add_g / gshunt diagonal) ------------------

    def _key_positions(self, key):
        row, col = key
        if isinstance(row, (int, np.integer)) and isinstance(
            col, (int, np.integer)
        ):
            return self.pattern.position(int(row), int(col))
        return self.pattern.positions(row, col)

    def __getitem__(self, key):
        return self.data[self._key_positions(key)]

    def __setitem__(self, key, value):
        self.data[self._key_positions(key)] = value

    # -- whole-matrix arithmetic (transient integrator, AC combination) --------

    def copy(self) -> "PatternMatrix":
        return PatternMatrix(self.pattern, self.data.copy())

    def __mul__(self, scalar):
        out = self.data[: self.pattern.nnz + 1].astype(
            np.result_type(self.data.dtype, type(scalar)), copy=True
        )
        out *= scalar
        return PatternMatrix(self.pattern, out)

    __rmul__ = __mul__

    def __iadd__(self, other):
        if isinstance(other, PatternMatrix):
            if other.pattern is not self.pattern:
                raise AnalysisError(
                    "cannot combine PatternMatrix values from different "
                    "sparsity patterns"
                )
            self.values.__iadd__(other.values)
            return self
        return NotImplemented

    def __add__(self, other):
        if isinstance(other, PatternMatrix):
            if other.pattern is not self.pattern:
                raise AnalysisError(
                    "cannot combine PatternMatrix values from different "
                    "sparsity patterns"
                )
            nnz = self.pattern.nnz
            out = np.zeros(
                nnz + 1,
                dtype=np.result_type(self.data.dtype, other.data.dtype),
            )
            np.add(self.values, other.values, out=out[:nnz])
            return PatternMatrix(self.pattern, out)
        return NotImplemented

    # -- conversion -------------------------------------------------------------

    def to_csc(self):
        """Zero-copy ``csc_matrix`` over the current values."""
        return self.pattern.csc(self.data)

    def toarray(self) -> np.ndarray:
        return self.to_csc().toarray()

    def __array__(self, dtype=None, copy=None):
        dense = self.toarray()
        if dtype is not None:
            dense = dense.astype(dtype)
        return dense

    @property
    def T(self) -> np.ndarray:
        # Only reached by fallback (non-batched) adjoint solves; the
        # batched noise path keeps the transpose sparse.
        return self.toarray().T

    def dot(self, x: np.ndarray) -> np.ndarray:
        return self.to_csc().dot(x)

    def __matmul__(self, x):
        return self.dot(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PatternMatrix {self.pattern.size}x{self.pattern.size}, "
                f"nnz={self.pattern.nnz}>")

"""SPICE deck parser.

Parses the classic card format into a :class:`~repro.spice.netlist.Circuit`
plus an analysis list:

* title on the first line; ``*`` comment lines; ``+`` continuations;
  inline ``$`` comments; case-insensitive everywhere,
* elements R, C, L, V, I, E, G, F, H, D, Q and X (subcircuit calls),
* ``.MODEL`` cards for D / NPN / PNP,
* ``.SUBCKT`` / ``.ENDS`` definitions, flattened at instantiation with
  dotted names (``X1.R3``, node ``X1.n4``),
* analysis cards ``.OP``, ``.DC``, ``.AC``, ``.TRAN`` and ``.END``.

The geometry generator (:mod:`repro.geometry.generator`) emits decks in
this format, closing the paper's Fig. 10 loop: schematic in, model cards
out, simulation on the result.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..devices.parameters import GummelPoonParameters
from ..errors import ParseError
from ..units import parse_value
from .netlist import Circuit
from .elements import (
    BJT,
    CCCS,
    CCVS,
    Capacitor,
    CurrentSource,
    DC,
    Diode,
    DiodeModel,
    Inductor,
    PWL,
    Pulse,
    Resistor,
    Sine,
    VCCS,
    VCVS,
    VoltageSource,
)


@dataclass
class AnalysisCard:
    """One parsed analysis request (.OP/.DC/.AC/.TRAN)."""

    kind: str
    args: dict = field(default_factory=dict)


@dataclass
class Deck:
    """A parsed deck: circuit, models, analyses and solver options.

    ``options`` holds the recognized ``.OPTIONS`` settings (lower-cased
    names: ``reltol``, ``vntol``, ``abstol``, ``itl1``, ``gmin``);
    unrecognized options are accepted and ignored, as SPICE does.
    """

    title: str
    circuit: Circuit
    models: dict
    analyses: list[AnalysisCard]
    options: dict = field(default_factory=dict)


@dataclass
class _Subckt:
    name: str
    ports: list[str]
    body: list[tuple[int, str]]  # (line number, logical line)


def parse_deck(text: str) -> Deck:
    """Parse deck text into a :class:`Deck`."""
    return _Parser(text).parse()


def parse_file(path) -> Deck:
    """Parse a deck file from disk (see :func:`parse_deck`)."""
    with open(path) as handle:
        return parse_deck(handle.read())


_WAVEFORM_NAMES = ("SIN", "PULSE", "PWL", "DC", "AC")


class _Parser:
    def __init__(self, text: str):
        raw = text.splitlines()
        if not raw:
            raise ParseError("empty deck")
        # SPICE semantics: the first line is the title, unconditionally.
        self.title = raw[0].strip().lstrip("*").strip() or "untitled"
        self.lines = _logical_lines("\n".join(raw[1:]), first_line=2)
        self.models: dict[str, object] = {}
        self.subckts: dict[str, _Subckt] = {}
        self.analyses: list[AnalysisCard] = []
        self.options: dict = {}
        #: deferred (constructor, lineno) for current-controlled sources.
        self._deferred: list = []

    def parse(self) -> Deck:
        if not self.lines:
            raise ParseError("deck has no content after the title line")
        body = self.lines
        circuit = Circuit(self.title)

        # Pass 1: models and subckt definitions.
        remaining: list[tuple[int, str]] = []
        i = 0
        while i < len(body):
            lineno, line = body[i]
            upper = line.upper()
            if upper.startswith(".MODEL"):
                self._parse_model(line, lineno)
            elif upper.startswith(".SUBCKT"):
                i = self._parse_subckt(body, i)
                continue
            else:
                remaining.append((lineno, line))
            i += 1

        # Pass 2: elements and analyses.
        for lineno, line in remaining:
            if line.startswith("."):
                self._parse_dot_card(line, lineno)
            else:
                self._parse_element(circuit, line, lineno, prefix="", node_map={})
        for build in self._deferred:
            build(circuit)
        self._deferred.clear()
        if "permc" in self.options:
            # Rides on the circuit so engine compilation — which never
            # sees the deck — can configure the sparse LU's ordering.
            circuit._permc_spec = self.options["permc"]
        return Deck(self.title, circuit, self.models, self.analyses,
                    self.options)

    # -- models and subcircuits ------------------------------------------------

    def _parse_model(self, line: str, lineno: int) -> None:
        match = re.match(
            r"\.MODEL\s+(\S+)\s+(\w+)\s*(?:\((.*)\))?\s*$",
            line, re.IGNORECASE | re.DOTALL,
        )
        if not match:
            raise ParseError(f"malformed .MODEL card: {line!r}", lineno)
        name, kind, params_text = match.groups()
        params = _parse_assignments(params_text or "", lineno)
        kind = kind.upper()
        if kind in ("NPN", "PNP"):
            model = GummelPoonParameters.from_card_params(name, kind.lower(), params)
        elif kind == "D":
            model = DiodeModel.from_card_params(name, params)
        else:
            raise ParseError(f"unsupported model type {kind!r}", lineno)
        self.models[name.upper()] = model

    def _parse_subckt(self, body: list[tuple[int, str]], start: int) -> int:
        lineno, header = body[start]
        words = header.split()
        if len(words) < 3:
            raise ParseError(".SUBCKT needs a name and at least one port", lineno)
        name = words[1].upper()
        ports = [w for w in words[2:]]
        inner: list[tuple[int, str]] = []
        i = start + 1
        while i < len(body):
            inner_lineno, line = body[i]
            if line.upper().startswith(".ENDS"):
                self.subckts[name] = _Subckt(name, ports, inner)
                return i + 1
            if line.upper().startswith(".SUBCKT"):
                raise ParseError("nested .SUBCKT definitions are not supported",
                                 inner_lineno)
            inner.append((inner_lineno, line))
            i += 1
        raise ParseError(f".SUBCKT {name} has no matching .ENDS", lineno)

    # -- analyses ----------------------------------------------------------------

    def _parse_dot_card(self, line: str, lineno: int) -> None:
        words = line.split()
        card = words[0].upper()
        if card == ".END":
            return
        if card == ".OP":
            self.analyses.append(AnalysisCard("op"))
        elif card == ".DC":
            if len(words) != 5:
                raise ParseError(".DC needs: source start stop step", lineno)
            self.analyses.append(AnalysisCard("dc", {
                "source": words[1],
                "start": parse_value(words[2]),
                "stop": parse_value(words[3]),
                "step": parse_value(words[4]),
            }))
        elif card == ".AC":
            if len(words) != 5:
                raise ParseError(".AC needs: type points fstart fstop", lineno)
            self.analyses.append(AnalysisCard("ac", {
                "sweep": words[1].lower(),
                "points": int(parse_value(words[2])),
                "start": parse_value(words[3]),
                "stop": parse_value(words[4]),
            }))
        elif card == ".TRAN":
            if len(words) < 3:
                raise ParseError(".TRAN needs: step stop", lineno)
            self.analyses.append(AnalysisCard("tran", {
                "step": parse_value(words[1]),
                "stop": parse_value(words[2]),
            }))
        elif card == ".TF":
            # .TF V(out) VIN
            if len(words) != 3:
                raise ParseError(".TF needs: V(node) source", lineno)
            self.analyses.append(AnalysisCard("tf", {
                "output": _output_node(words[1], lineno),
                "source": words[2],
            }))
        elif card == ".NOISE":
            # .NOISE V(out) VS DEC 10 1k 1G
            if len(words) != 7:
                raise ParseError(
                    ".NOISE needs: V(node) source type points fstart fstop",
                    lineno,
                )
            self.analyses.append(AnalysisCard("noise", {
                "output": _output_node(words[1], lineno),
                "source": words[2],
                "sweep": words[3].lower(),
                "points": int(parse_value(words[4])),
                "start": parse_value(words[5]),
                "stop": parse_value(words[6]),
            }))
        elif card == ".FOUR":
            # .FOUR 1MEG V(out)  — applies to the preceding .TRAN
            if len(words) != 3:
                raise ParseError(".FOUR needs: fundamental V(node)", lineno)
            self.analyses.append(AnalysisCard("four", {
                "fundamental": parse_value(words[1]),
                "output": _output_node(words[2], lineno),
            }))
        elif card in (".OPTIONS", ".OPTION"):
            # Recognized solver options feed the runner's Tolerances;
            # everything else (bare flags like ACCT, unknown settings)
            # is accepted and ignored, as SPICE does.
            recognized = ("reltol", "vntol", "abstol", "itl1", "gmin")
            rest = line.split(None, 1)[1] if len(words) > 1 else ""
            for name, value in re.findall(r"(\w+)\s*=\s*(\S+)", rest):
                if name.lower() == "solver":
                    # String-valued: picks the engine assembly backend.
                    backend = value.lower()
                    if backend not in ("auto", "dense", "sparse"):
                        raise ParseError(
                            f".OPTIONS SOLVER must be auto, dense or "
                            f"sparse (got {value})", lineno,
                        )
                    self.options["solver"] = backend
                elif name.lower() == "permc":
                    # Fill-reducing column ordering for the sparse LU.
                    spec = value.upper()
                    if spec not in ("COLAMD", "NATURAL", "MMD_ATA",
                                    "MMD_AT_PLUS_A"):
                        raise ParseError(
                            f".OPTIONS PERMC must be COLAMD, NATURAL, "
                            f"MMD_ATA or MMD_AT_PLUS_A (got {value})",
                            lineno,
                        )
                    self.options["permc"] = spec
                elif name.lower() in recognized:
                    try:
                        self.options[name.lower()] = parse_value(value)
                    except Exception:
                        raise ParseError(
                            f"bad .OPTIONS value {name}={value}", lineno
                        ) from None
        elif card in (".IC", ".NODESET", ".PRINT", ".PLOT", ".PROBE"):
            pass  # accepted and ignored, as many decks carry them
        else:
            raise ParseError(f"unsupported card {card}", lineno)

    # -- elements ------------------------------------------------------------------

    def _parse_element(
        self, circuit: Circuit, line: str, lineno: int,
        prefix: str, node_map: dict[str, str],
    ) -> None:
        words = _split_with_groups(line, lineno)
        name = prefix + words[0]
        letter = words[0][0].upper()

        def node(raw: str) -> str:
            return node_map.get(raw, prefix + raw if raw not in ("0", "gnd", "GND")
                                else raw)

        try:
            if letter == "R":
                circuit.add(Resistor(name, (node(words[1]), node(words[2])),
                                     parse_value(words[3])))
            elif letter == "C":
                ic = _pop_ic(words)
                circuit.add(Capacitor(name, (node(words[1]), node(words[2])),
                                      parse_value(words[3]), ic=ic))
            elif letter == "L":
                ic = _pop_ic(words)
                circuit.add(Inductor(name, (node(words[1]), node(words[2])),
                                     parse_value(words[3]), ic=ic))
            elif letter in ("V", "I"):
                self._parse_source(circuit, letter, name, words, node, lineno)
            elif letter == "E":
                circuit.add(VCVS(name, tuple(node(w) for w in words[1:5]),
                                 parse_value(words[5])))
            elif letter == "G":
                circuit.add(VCCS(name, tuple(node(w) for w in words[1:5]),
                                 parse_value(words[5])))
            elif letter in ("F", "H"):
                out_nodes = (node(words[1]), node(words[2]))
                control_name = (prefix + words[3]).upper()
                coeff = parse_value(words[4])
                cls = CCCS if letter == "F" else CCVS

                def build(ckt, name=name, out_nodes=out_nodes,
                          control_name=control_name, coeff=coeff, cls=cls,
                          lineno=lineno):
                    try:
                        control = ckt.element(control_name)
                    except Exception:
                        raise ParseError(
                            f"controlling source {control_name} not found", lineno
                        ) from None
                    ckt.add(cls(name, out_nodes, control, coeff))

                self._deferred.append(build)
            elif letter == "D":
                model = self._lookup_model(words[3], DiodeModel, lineno)
                area = parse_value(words[4]) if len(words) > 4 else 1.0
                circuit.add(Diode(name, (node(words[1]), node(words[2])),
                                  model, area=area))
            elif letter == "Q":
                self._parse_bjt(circuit, name, words, node, lineno)
            elif letter == "X":
                self._instantiate_subckt(circuit, name, words, node, lineno)
            else:
                raise ParseError(f"unknown element type {words[0]!r}", lineno)
        except IndexError:
            raise ParseError(f"too few fields on element line: {line!r}",
                             lineno) from None

    def _parse_bjt(self, circuit, name, words, node, lineno) -> None:
        # Q name c b e [s] model [area]
        fields = words[1:]
        # The model name is the first field that names a known model.
        model_pos = None
        for pos in range(3, min(len(fields), 5)):
            if fields[pos].upper() in self.models:
                model_pos = pos
                break
        if model_pos is None:
            raise ParseError(
                f"BJT {name}: no .MODEL found among fields {fields[3:5]}", lineno
            )
        nodes = tuple(node(w) for w in fields[:model_pos])
        model = self._lookup_model(fields[model_pos], GummelPoonParameters, lineno)
        area = (parse_value(fields[model_pos + 1])
                if len(fields) > model_pos + 1 else 1.0)
        circuit.add(BJT(name, nodes, model, area=area))

    def _parse_source(self, circuit, letter, name, words, node, lineno) -> None:
        nodes = (node(words[1]), node(words[2]))
        rest = words[3:]
        waveform = DC(0.0)
        ac_mag = 0.0
        ac_phase = 0.0
        i = 0
        while i < len(rest):
            token = rest[i]
            upper = token.upper()
            if upper == "DC":
                waveform = DC(parse_value(rest[i + 1]))
                i += 2
            elif upper == "AC":
                ac_mag = parse_value(rest[i + 1])
                if i + 2 < len(rest) and _is_number(rest[i + 2]):
                    ac_phase = parse_value(rest[i + 2])
                    i += 3
                else:
                    i += 2
            elif upper.startswith("SIN("):
                args = _group_args(token, lineno)
                waveform = Sine(*args)
                i += 1
            elif upper.startswith("PULSE("):
                args = _group_args(token, lineno)
                waveform = Pulse(*args)
                i += 1
            elif upper.startswith("PWL("):
                args = _group_args(token, lineno)
                if len(args) % 2:
                    raise ParseError("PWL needs an even number of values", lineno)
                points = list(zip(args[0::2], args[1::2]))
                waveform = PWL(points)
                i += 1
            elif _is_number(token):
                waveform = DC(parse_value(token))
                i += 1
            else:
                raise ParseError(f"unexpected source field {token!r}", lineno)
        cls = VoltageSource if letter == "V" else CurrentSource
        circuit.add(cls(name, nodes, dc=waveform, ac_mag=ac_mag,
                        ac_phase_deg=ac_phase))

    def _instantiate_subckt(self, circuit, name, words, node, lineno) -> None:
        subckt_name = words[-1].upper()
        subckt = self.subckts.get(subckt_name)
        if subckt is None:
            raise ParseError(f"unknown subcircuit {words[-1]!r}", lineno)
        outer_nodes = [node(w) for w in words[1:-1]]
        if len(outer_nodes) != len(subckt.ports):
            raise ParseError(
                f"subcircuit {subckt.name} has {len(subckt.ports)} ports, "
                f"{len(outer_nodes)} given", lineno,
            )
        inner_prefix = name + "."
        port_map = dict(zip(subckt.ports, outer_nodes))
        for inner_lineno, line in subckt.body:
            self._parse_element(circuit, line, inner_lineno,
                                prefix=inner_prefix, node_map=port_map)

    def _lookup_model(self, name: str, expected_type, lineno: int):
        model = self.models.get(name.upper())
        if model is None:
            raise ParseError(f"unknown model {name!r}", lineno)
        if not isinstance(model, expected_type):
            raise ParseError(
                f"model {name!r} is a {type(model).__name__}, "
                f"expected {expected_type.__name__}", lineno,
            )
        return model


# -- lexical helpers ---------------------------------------------------------------


def _output_node(token: str, lineno: int) -> str:
    """Parse the ``V(node)`` operand of .TF/.NOISE/.FOUR cards."""
    match = re.match(r"^V\((\S+)\)$", token, re.IGNORECASE)
    if not match:
        raise ParseError(f"expected V(node), got {token!r}", lineno)
    return match.group(1)


def _logical_lines(text: str, first_line: int = 1) -> list[tuple[int, str]]:
    """Strip comments, join continuations; returns (lineno, line) pairs."""
    lines: list[tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=first_line):
        line = raw.split("$", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("*") or stripped.startswith(";"):
            continue
        if stripped.startswith("+"):
            if not lines:
                raise ParseError("continuation line with nothing to continue",
                                 lineno)
            prev_no, prev = lines[-1]
            lines[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            lines.append((lineno, stripped))
    return lines


def _split_with_groups(line: str, lineno: int) -> list[str]:
    """Split on whitespace but keep ``NAME( ... )`` groups as one token."""
    tokens: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        if line[i].isspace():
            i += 1
            continue
        start = i
        depth = 0
        while i < n and (depth > 0 or not line[i].isspace()):
            if line[i] == "(":
                depth += 1
            elif line[i] == ")":
                depth -= 1
                if depth < 0:
                    raise ParseError("unbalanced ')'", lineno)
            i += 1
        if depth != 0:
            raise ParseError("unbalanced '('", lineno)
        tokens.append(line[start:i])
    return tokens


def _group_args(token: str, lineno: int) -> list[float]:
    """Parse ``NAME(a b c)`` (or comma-separated) into float args."""
    match = re.match(r"^\w+\((.*)\)$", token, re.DOTALL)
    if not match:
        raise ParseError(f"malformed function token {token!r}", lineno)
    inner = match.group(1).replace(",", " ")
    return [parse_value(w) for w in inner.split()]


def _parse_assignments(text: str, lineno: int) -> dict[str, float]:
    """Parse ``A=1 B=2u`` parameter lists."""
    params: dict[str, float] = {}
    words = text.replace("=", " = ").split()
    i = 0
    while i < len(words):
        if i + 2 >= len(words) or words[i + 1] != "=":
            raise ParseError(f"expected NAME=VALUE, got {words[i]!r}", lineno)
        params[words[i].upper()] = parse_value(words[i + 2])
        i += 3
    return params


def _is_number(token: str) -> bool:
    try:
        parse_value(token)
        return True
    except Exception:
        return False


def _pop_ic(words: list[str]) -> float | None:
    """Extract a trailing ``IC=value`` field, if present."""
    for i, word in enumerate(words):
        if word.upper().startswith("IC="):
            value = parse_value(word.split("=", 1)[1])
            del words[i]
            return value
    return None

"""A SPICE-class analog circuit simulator.

Built from scratch as the substrate for reproducing the paper's Fig. 9
(fT vs Ic) and Table 1 (ring-oscillator frequency) experiments: modified
nodal analysis with DC operating point, AC small-signal and transient
analyses, and a classic deck parser.
"""

from .netlist import Circuit, Element
from .engine import (
    CompiledCircuit,
    DenseLUSolver,
    EngineStats,
    LegacyEngine,
    LinearSolver,
    SparseLUSolver,
    compile_circuit,
    get_engine,
    make_solver,
    resolve_engine,
)
from .analysis import (
    DCSweepResult,
    OperatingPointResult,
    Simulator,
)
from .ac import ACResult, frequency_grid, solve_ac
from .dcop import Tolerances, solve_dc
from .transient import TransientResult, solve_transient
from .parser import AnalysisCard, Deck, parse_deck, parse_file
from .noise import NoiseResult, solve_noise
from .fourier import (
    FourierComponent,
    FourierResult,
    fourier_analysis,
    total_harmonic_distortion,
)
from .lint import LintIssue, check_circuit, lint_circuit
from .runner import DeckRun, run_deck
from .solvercost import DEFAULT_SOLVER_COST_MODEL, SolverCostModel
from .sparse import PatternMatrix, SparsityPattern
from .analysis import TransferFunction, transfer_function
from .temperature import circuit_at_temperature, temperature_sweep
from .serialize import circuit_to_deck
from . import elements

__all__ = [
    "Circuit",
    "Element",
    "CompiledCircuit",
    "LegacyEngine",
    "EngineStats",
    "LinearSolver",
    "DenseLUSolver",
    "SparseLUSolver",
    "compile_circuit",
    "get_engine",
    "make_solver",
    "resolve_engine",
    "Simulator",
    "OperatingPointResult",
    "DCSweepResult",
    "ACResult",
    "TransientResult",
    "Tolerances",
    "solve_dc",
    "solve_ac",
    "solve_transient",
    "frequency_grid",
    "parse_deck",
    "parse_file",
    "Deck",
    "AnalysisCard",
    "NoiseResult",
    "solve_noise",
    "FourierResult",
    "FourierComponent",
    "fourier_analysis",
    "total_harmonic_distortion",
    "DeckRun",
    "run_deck",
    "LintIssue",
    "check_circuit",
    "lint_circuit",
    "SparsityPattern",
    "PatternMatrix",
    "SolverCostModel",
    "DEFAULT_SOLVER_COST_MODEL",
    "TransferFunction",
    "transfer_function",
    "circuit_at_temperature",
    "temperature_sweep",
    "circuit_to_deck",
    "elements",
]

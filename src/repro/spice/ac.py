"""AC small-signal analysis.

Linearizes the circuit at a DC operating point and solves the complex
system ``(G + j*omega*C) dx = b`` per frequency, where ``G = dI/dx`` and
``C = dQ/dx`` are the Jacobians delivered by the element loads at the
operating point, and ``b`` collects the AC stimuli of the independent
sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from .dcop import solve_dc
from .elements.sources import CurrentSource, VoltageSource
from .engine import EngineStats, resolve_engine
from .netlist import Circuit


@dataclass
class ACResult:
    """Frequency sweep result: complex solution per frequency."""

    circuit: Circuit
    frequencies: np.ndarray
    solutions: np.ndarray  #: shape (num_freqs, num_unknowns), complex
    dc_solution: np.ndarray
    #: Engine work performed by this analysis.
    stats: EngineStats | None = None

    def voltage(self, node: str) -> np.ndarray:
        """Complex node voltage over the sweep."""
        index = self.circuit.node_index(node)
        if index < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.solutions[:, index]

    def voltage_db(self, node: str) -> np.ndarray:
        """Node voltage magnitude in dB (20*log10)."""
        magnitude = np.abs(self.voltage(node))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-300))

    def voltage_phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.voltage(node)))

    def branch_current(self, element_name: str) -> np.ndarray:
        index = self.circuit.branch_index(element_name)
        return self.solutions[:, index]


def frequency_grid(
    start: float, stop: float, points: int, sweep: str = "dec"
) -> np.ndarray:
    """Build an AC sweep grid: 'dec' (points/decade), 'lin', or 'oct'."""
    if start <= 0 or stop < start:
        raise AnalysisError(f"bad AC sweep range [{start}, {stop}]")
    if points < 1:
        raise AnalysisError("AC sweep needs at least one point")
    if sweep == "lin":
        return np.linspace(start, stop, points)
    if sweep == "dec":
        decades = np.log10(stop / start)
        count = max(int(np.ceil(decades * points)) + 1, 2) if stop > start else 1
        return np.geomspace(start, stop, count)
    if sweep == "oct":
        octaves = np.log2(stop / start)
        count = max(int(np.ceil(octaves * points)) + 1, 2) if stop > start else 1
        return np.geomspace(start, stop, count)
    raise AnalysisError(f"unknown sweep type {sweep!r}")


def solve_ac(
    circuit: Circuit,
    frequencies,
    dc_solution: np.ndarray | None = None,
    gmin: float = 1e-12,
    engine=None,
) -> ACResult:
    """Run an AC sweep over the given frequencies (Hz)."""
    frequencies = np.asarray(list(frequencies), dtype=float)
    engine = resolve_engine(circuit, engine)
    snapshot = engine.stats.copy()
    with engine.timed():
        limits: dict = {}
        if dc_solution is None:
            dc_solution = solve_dc(
                circuit, gmin=gmin, limits=limits, engine=engine
            )
        size = circuit.num_unknowns
        # One evaluation at the operating point gives both Jacobians.  The
        # limits dict is pre-converged, so limiting is inactive here.
        # Copy out of the engine buffers: the sweep below must not be
        # clobbered by any later evaluation.
        ctx = engine.evaluate(dc_solution, gmin=gmin, limits=limits)
        g_mat = ctx.g_mat.copy()
        c_mat = ctx.c_mat.copy()

        rhs = np.zeros(size, dtype=complex)
        for element in circuit:
            if isinstance(element, VoltageSource):
                stimulus = element.ac_stimulus()
                if stimulus:
                    rhs[element.branch_index[0]] += stimulus
            elif isinstance(element, CurrentSource):
                stimulus = element.ac_stimulus()
                if stimulus:
                    p, n = element.node_index
                    if p >= 0:
                        rhs[p] -= stimulus
                    if n >= 0:
                        rhs[n] += stimulus
        if not np.any(rhs):
            raise AnalysisError("AC analysis: no source has an AC stimulus")

        solutions = np.zeros((len(frequencies), size), dtype=complex)
        for k, frequency in enumerate(frequencies):
            omega = 2.0 * np.pi * frequency
            system = g_mat + 1j * omega * c_mat
            solutions[k] = engine.solve(system, rhs)
    result = ACResult(
        circuit=circuit,
        frequencies=frequencies,
        solutions=solutions,
        dc_solution=dc_solution,
        stats=None,
    )
    result.stats = engine.stats.since(snapshot)
    return result

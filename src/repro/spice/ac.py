"""AC small-signal analysis.

Linearizes the circuit at a DC operating point and solves the complex
system ``(G + j*omega*C) dx = b`` per frequency, where ``G = dI/dx`` and
``C = dQ/dx`` are the Jacobians delivered by the element loads at the
operating point, and ``b`` collects the AC stimuli of the independent
sources.

The solve core is lane-aware: :func:`solve_ac_lanes` takes a *stack* of
(G, C) pairs — one lane per operating point — and solves every
``lane x frequency`` combination through one unified block iterator, so
a blocked parameter sweep (:class:`repro.sweep.batched.BlockedACSweep`)
and a plain single-point AC analysis share the exact same arithmetic.
Blocking only partitions *which* systems go into each batched call;
each system is formed elementwise and solved independently, so results
are bit-identical regardless of lane count or block size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .dcop import solve_dc
from .elements.sources import CurrentSource, VoltageSource
from .engine import EngineStats, resolve_engine
from .netlist import Circuit


@dataclass
class ACResult:
    """Frequency sweep result: complex solution per frequency."""

    circuit: Circuit
    frequencies: np.ndarray
    solutions: np.ndarray  #: shape (num_freqs, num_unknowns), complex
    dc_solution: np.ndarray
    #: Engine work performed by this analysis.
    stats: EngineStats | None = None

    def voltage(self, node: str) -> np.ndarray:
        """Complex node voltage over the sweep."""
        index = self.circuit.node_index(node)
        if index < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.solutions[:, index]

    def voltage_db(self, node: str) -> np.ndarray:
        """Node voltage magnitude in dB (20*log10)."""
        magnitude = np.abs(self.voltage(node))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-300))

    def voltage_phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.voltage(node)))

    def branch_current(self, element_name: str) -> np.ndarray:
        index = self.circuit.branch_index(element_name)
        return self.solutions[:, index]


def frequency_grid(
    start: float, stop: float, points: int, sweep: str = "dec"
) -> np.ndarray:
    """Build an AC sweep grid: 'dec' (points/decade), 'lin', or 'oct'."""
    if start <= 0 or stop < start:
        raise AnalysisError(f"bad AC sweep range [{start}, {stop}]")
    if points < 1:
        raise AnalysisError("AC sweep needs at least one point")
    if sweep == "lin":
        return np.linspace(start, stop, points)
    if sweep == "dec":
        decades = np.log10(stop / start)
        count = max(int(np.ceil(decades * points)) + 1, 2) if stop > start else 1
        return np.geomspace(start, stop, count)
    if sweep == "oct":
        octaves = np.log2(stop / start)
        count = max(int(np.ceil(octaves * points)) + 1, 2) if stop > start else 1
        return np.geomspace(start, stop, count)
    raise AnalysisError(f"unknown sweep type {sweep!r}")


#: Memory budget for one batched block (bytes of complex system data);
#: blocks are sized so ``systems * per_system_bytes`` stays below.
MAX_BLOCK_BYTES = 1 << 26


def ac_block_size(size: int, limit: int | None = None,
                  nnz: int | None = None) -> int:
    """Frequencies per batched block for an ``size``-unknown system.

    With ``nnz`` given (sparse assembly) the per-frequency footprint is
    a flat complex value vector over the pattern, not an ``(n, n)``
    matrix, so far more frequencies fit in one block.
    """
    per_system = 16 * nnz if nnz else 16 * size * size
    budget = (limit or MAX_BLOCK_BYTES) // max(per_system, 1)
    return int(min(max(budget, 1), 512))


def ac_lane_blocks(lanes: int, freqs: int, per_system_bytes: int,
                   limit: int | None = None) -> tuple[int, int]:
    """``(lane_block, freq_block)`` sizing for the unified block iterator.

    Lanes are packed first — stacking a whole parameter chunk into one
    batched call is the point of blocked sweeps — then as many
    frequencies as the remaining memory budget allows (capped at 512,
    matching :func:`ac_block_size` for the single-lane case).
    """
    budget = max(1, (limit or MAX_BLOCK_BYTES) // max(per_system_bytes, 1))
    lane_block = max(1, min(lanes, budget))
    freq_block = max(1, min(freqs, budget // lane_block, 512))
    return lane_block, freq_block


def ac_stimulus_rhs(circuit: Circuit, size: int) -> np.ndarray:
    """The complex AC excitation vector collected from the deck's
    independent sources.  All-zero when no source carries an AC
    stimulus — callers decide whether that is an error."""
    rhs = np.zeros(size, dtype=complex)
    for element in circuit:
        if isinstance(element, VoltageSource):
            stimulus = element.ac_stimulus()
            if stimulus:
                rhs[element.branch_index[0]] += stimulus
        elif isinstance(element, CurrentSource):
            stimulus = element.ac_stimulus()
            if stimulus:
                p, n = element.node_index
                if p >= 0:
                    rhs[p] -= stimulus
                if n >= 0:
                    rhs[n] += stimulus
    return rhs


def stack_ac_systems(g_stack: np.ndarray, c_stack: np.ndarray,
                     omegas: np.ndarray) -> np.ndarray:
    """Form ``G_l + j*omega_f*C_l`` for every (lane, frequency) pair.

    ``g_stack``/``c_stack`` are ``(lanes, nnz)`` flat value stacks
    (sparse assembly) or ``(lanes, n, n)`` dense stacks; the result is
    the flattened ``(lanes * freqs, ...)`` system stack, lane-major so
    a reshape recovers ``(lanes, freqs, ...)``.  Pure elementwise
    broadcast arithmetic: identical to forming each system alone.
    """
    g = np.asarray(g_stack)[:, None]
    c = np.asarray(c_stack)[:, None]
    w = np.asarray(omegas, dtype=float)
    w = w.reshape((1, w.size) + (1,) * (g.ndim - 2))
    data = g + 1j * w * c
    return data.reshape((-1,) + data.shape[2:])


def solve_ac_lanes(engine, g_stack: np.ndarray, c_stack: np.ndarray,
                   omegas: np.ndarray, rhs: np.ndarray,
                   batched: bool = True) -> np.ndarray:
    """Solve ``(G_l + j*omega_f*C_l) x = rhs`` for every lane and
    frequency; returns ``(lanes, freqs, n)`` complex.

    One unified block iterator covers every case — single frequency,
    single lane, or a full ``chunk x grid`` product: blocks are sized by
    :func:`ac_lane_blocks` and handed to the engine's batched entry
    points (``solve_pattern_batched`` over the shared CSC pattern for
    sparse value stacks, ``solve_batched`` for dense stacks).  Engines
    without a batched entry point (legacy), or ``batched=False``, fall
    back to one :meth:`solve` per system.  Both paths, and any block
    size, produce identical solutions: systems are formed elementwise
    and solved independently.
    """
    g_stack = np.asarray(g_stack)
    c_stack = np.asarray(c_stack)
    omegas = np.asarray(omegas, dtype=float)
    lanes = g_stack.shape[0]
    nfreq = omegas.size
    size = np.asarray(rhs).shape[-1]
    sparse = g_stack.ndim == 2
    out = np.zeros((lanes, nfreq, size), dtype=complex)
    solve_batched = getattr(engine, "solve_batched", None)
    if batched and (sparse or solve_batched is not None):
        solve_stack = engine.solve_pattern_batched if sparse \
            else solve_batched
        per_system = 16 * (g_stack.shape[-1] if sparse else size * size)
        lane_block, freq_block = ac_lane_blocks(lanes, nfreq, per_system)
        for l0 in range(0, lanes, lane_block):
            gs = g_stack[l0:l0 + lane_block]
            cs = c_stack[l0:l0 + lane_block]
            for f0 in range(0, nfreq, freq_block):
                w = omegas[f0:f0 + freq_block]
                data = stack_ac_systems(gs, cs, w)
                block = solve_stack(data, rhs)
                out[l0:l0 + gs.shape[0], f0:f0 + w.size] = block.reshape(
                    gs.shape[0], w.size, size
                )
        return out
    for lane in range(lanes):
        for k, omega in enumerate(omegas):
            if sparse:
                system = engine.pattern.matrix(
                    g_stack[lane] + 1j * omega * c_stack[lane]
                )
            else:
                system = g_stack[lane] + 1j * omega * c_stack[lane]
            out[lane, k] = engine.solve(system, rhs)
    return out


def solve_ac(
    circuit: Circuit,
    frequencies,
    dc_solution: np.ndarray | None = None,
    gmin: float = 1e-12,
    engine=None,
    batched: bool = True,
) -> ACResult:
    """Run an AC sweep over the given frequencies (Hz).

    ``G`` and ``C`` are assembled once at the operating point; the sweep
    then solves ``(G + j*omega*C) dx = b`` through
    :func:`solve_ac_lanes` with a single lane.  With ``batched=True``
    (the default) every grid — including a single spot frequency — goes
    through the blocked iterator: systems are formed as one
    ``(block, n, n)`` stack (dense) or ``(block, nnz)`` value stack
    (sparse assembly) and handed to the engine's batched solver.
    ``batched=False``, or an engine without ``solve_batched`` (the
    legacy engine), falls back to the per-frequency loop; both paths
    produce the same solutions and the regression tests assert it.
    """
    frequencies = np.asarray(list(frequencies), dtype=float)
    engine = resolve_engine(circuit, engine)
    snapshot = engine.stats.copy()
    with engine.timed():
        limits: dict = {}
        if dc_solution is None:
            dc_solution = solve_dc(
                circuit, gmin=gmin, limits=limits, engine=engine
            )
        size = circuit.num_unknowns
        # One evaluation at the operating point gives both Jacobians.  The
        # limits dict is pre-converged, so limiting is inactive here.
        # Copy out of the engine buffers: the sweep below must not be
        # clobbered by any later evaluation.
        ctx = engine.evaluate(dc_solution, gmin=gmin, limits=limits)
        sparse = getattr(engine, "assembly", "dense") == "sparse"
        if sparse:
            g_arr = np.array(ctx.g_mat.values)
            c_arr = np.array(ctx.c_mat.values)
        else:
            g_arr = np.array(ctx.g_mat)
            c_arr = np.array(ctx.c_mat)

        rhs = ac_stimulus_rhs(circuit, size)
        if not np.any(rhs):
            raise AnalysisError("AC analysis: no source has an AC stimulus")

        omegas = 2.0 * np.pi * frequencies
        solutions = solve_ac_lanes(
            engine, g_arr[None], c_arr[None], omegas, rhs, batched=batched
        )[0]
    result = ACResult(
        circuit=circuit,
        frequencies=frequencies,
        solutions=solutions,
        dc_solution=dc_solution,
        stats=None,
    )
    result.stats = engine.stats.since(snapshot)
    return result

"""AC small-signal analysis.

Linearizes the circuit at a DC operating point and solves the complex
system ``(G + j*omega*C) dx = b`` per frequency, where ``G = dI/dx`` and
``C = dQ/dx`` are the Jacobians delivered by the element loads at the
operating point, and ``b`` collects the AC stimuli of the independent
sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from .dcop import solve_dc
from .elements.sources import CurrentSource, VoltageSource
from .engine import EngineStats, resolve_engine
from .netlist import Circuit


@dataclass
class ACResult:
    """Frequency sweep result: complex solution per frequency."""

    circuit: Circuit
    frequencies: np.ndarray
    solutions: np.ndarray  #: shape (num_freqs, num_unknowns), complex
    dc_solution: np.ndarray
    #: Engine work performed by this analysis.
    stats: EngineStats | None = None

    def voltage(self, node: str) -> np.ndarray:
        """Complex node voltage over the sweep."""
        index = self.circuit.node_index(node)
        if index < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.solutions[:, index]

    def voltage_db(self, node: str) -> np.ndarray:
        """Node voltage magnitude in dB (20*log10)."""
        magnitude = np.abs(self.voltage(node))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-300))

    def voltage_phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.voltage(node)))

    def branch_current(self, element_name: str) -> np.ndarray:
        index = self.circuit.branch_index(element_name)
        return self.solutions[:, index]


def frequency_grid(
    start: float, stop: float, points: int, sweep: str = "dec"
) -> np.ndarray:
    """Build an AC sweep grid: 'dec' (points/decade), 'lin', or 'oct'."""
    if start <= 0 or stop < start:
        raise AnalysisError(f"bad AC sweep range [{start}, {stop}]")
    if points < 1:
        raise AnalysisError("AC sweep needs at least one point")
    if sweep == "lin":
        return np.linspace(start, stop, points)
    if sweep == "dec":
        decades = np.log10(stop / start)
        count = max(int(np.ceil(decades * points)) + 1, 2) if stop > start else 1
        return np.geomspace(start, stop, count)
    if sweep == "oct":
        octaves = np.log2(stop / start)
        count = max(int(np.ceil(octaves * points)) + 1, 2) if stop > start else 1
        return np.geomspace(start, stop, count)
    raise AnalysisError(f"unknown sweep type {sweep!r}")


#: Memory budget for one batched frequency block (bytes of complex
#: system matrices); blocks are sized so `block * n^2 * 16` stays below.
MAX_BLOCK_BYTES = 1 << 26


def ac_block_size(size: int, limit: int | None = None,
                  nnz: int | None = None) -> int:
    """Frequencies per batched block for an ``size``-unknown system.

    With ``nnz`` given (sparse assembly) the per-frequency footprint is
    a flat complex value vector over the pattern, not an ``(n, n)``
    matrix, so far more frequencies fit in one block.
    """
    per_system = 16 * nnz if nnz else 16 * size * size
    budget = (limit or MAX_BLOCK_BYTES) // max(per_system, 1)
    return int(min(max(budget, 1), 512))


def solve_ac(
    circuit: Circuit,
    frequencies,
    dc_solution: np.ndarray | None = None,
    gmin: float = 1e-12,
    engine=None,
    batched: bool = True,
) -> ACResult:
    """Run an AC sweep over the given frequencies (Hz).

    ``G`` and ``C`` are assembled once at the operating point; the sweep
    then solves ``(G + j*omega*C) dx = b`` for every frequency.  With
    ``batched=True`` (the default) the grid is solved in blocks: the
    block's systems are formed as one ``(block, n, n)`` stack and handed
    to the engine's :meth:`~repro.spice.engine.LinearSolver.solve_batched`
    — a single broadcast LAPACK call on the dense backends.
    ``batched=False``, or an engine without ``solve_batched`` (the
    legacy engine), falls back to the per-frequency loop; both paths
    produce the same solutions and the regression tests assert it.
    """
    frequencies = np.asarray(list(frequencies), dtype=float)
    engine = resolve_engine(circuit, engine)
    snapshot = engine.stats.copy()
    with engine.timed():
        limits: dict = {}
        if dc_solution is None:
            dc_solution = solve_dc(
                circuit, gmin=gmin, limits=limits, engine=engine
            )
        size = circuit.num_unknowns
        # One evaluation at the operating point gives both Jacobians.  The
        # limits dict is pre-converged, so limiting is inactive here.
        # Copy out of the engine buffers: the sweep below must not be
        # clobbered by any later evaluation.
        ctx = engine.evaluate(dc_solution, gmin=gmin, limits=limits)
        g_mat = ctx.g_mat.copy()
        c_mat = ctx.c_mat.copy()

        rhs = np.zeros(size, dtype=complex)
        for element in circuit:
            if isinstance(element, VoltageSource):
                stimulus = element.ac_stimulus()
                if stimulus:
                    rhs[element.branch_index[0]] += stimulus
            elif isinstance(element, CurrentSource):
                stimulus = element.ac_stimulus()
                if stimulus:
                    p, n = element.node_index
                    if p >= 0:
                        rhs[p] -= stimulus
                    if n >= 0:
                        rhs[n] += stimulus
        if not np.any(rhs):
            raise AnalysisError("AC analysis: no source has an AC stimulus")

        solutions = np.zeros((len(frequencies), size), dtype=complex)
        omegas = 2.0 * np.pi * frequencies
        sparse = getattr(engine, "assembly", "dense") == "sparse"
        solve_batched = getattr(engine, "solve_batched", None)
        if sparse and batched and len(frequencies) > 1:
            # Sparse assembly: stack flat value vectors over the fixed
            # pattern — (block, nnz) complex instead of (block, n, n).
            g_vals = g_mat.values
            c_vals = c_mat.values
            block = ac_block_size(size, nnz=engine.pattern.nnz)
            for start in range(0, len(frequencies), block):
                w = omegas[start:start + block]
                data = g_vals[None, :] + 1j * w[:, None] * c_vals[None, :]
                solutions[start:start + len(w)] = (
                    engine.solve_pattern_batched(data, rhs)
                )
        elif batched and solve_batched is not None and len(frequencies) > 1:
            block = ac_block_size(size)
            for start in range(0, len(frequencies), block):
                w = omegas[start:start + block]
                systems = (g_mat[None, :, :]
                           + 1j * w[:, None, None] * c_mat[None, :, :])
                solutions[start:start + len(w)] = solve_batched(
                    systems, rhs
                )
        else:
            for k, omega in enumerate(omegas):
                system = (g_mat.pattern.matrix(
                              g_mat.values + 1j * omega * c_mat.values)
                          if sparse else g_mat + 1j * omega * c_mat)
                solutions[k] = engine.solve(system, rhs)
    result = ACResult(
        circuit=circuit,
        frequencies=frequencies,
        solutions=solutions,
        dc_solution=dc_solution,
        stats=None,
    )
    result.stats = engine.stats.since(snapshot)
    return result

"""Circuit and element containers for the SPICE-class simulator.

A :class:`Circuit` is a flat collection of elements connected at named
nodes.  Node ``"0"`` (alias ``"gnd"``) is ground and is eliminated from the
equation system.  Elements are objects implementing the small interface
defined by :class:`Element`; the simulator is formulated charge-oriented:

    F(x, t) = I(x, t) + d/dt Q(x) - 0 = 0

where ``x`` stacks node voltages and branch currents, ``I`` collects
resistive currents, source currents and branch constraint residuals, and
``Q`` collects capacitor charges (node rows) and inductor fluxes (branch
rows).  Each element contributes to ``I``, ``Q`` and their Jacobians
through :meth:`Element.load`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import NetlistError

GROUND_NAMES = ("0", "gnd", "GND", "Gnd")


def canonical_node(name: str) -> str:
    """Return the canonical spelling of a node name (ground becomes "0")."""
    if name in GROUND_NAMES:
        return "0"
    return name


class Element:
    """Base class for circuit elements.

    Subclasses set :attr:`name` (unique within a circuit, conventionally
    starting with the SPICE type letter) and :attr:`nodes` (canonical node
    names in terminal order), and implement :meth:`load`.
    """

    #: Number of extra unknowns (branch currents) this element adds.
    num_branches = 0

    def __init__(self, name: str, nodes: Sequence[str]):
        self.name = name
        self.nodes = tuple(canonical_node(n) for n in nodes)
        #: Equation indices of the terminals, -1 for ground.  Filled in by
        #: :meth:`Circuit.assign_indices`.
        self.node_index: tuple[int, ...] = ()
        #: Equation indices of this element's branch currents.
        self.branch_index: tuple[int, ...] = ()

    def bind(self, node_index: Sequence[int], branch_index: Sequence[int]) -> None:
        """Record the equation indices assigned by the circuit."""
        self.node_index = tuple(node_index)
        self.branch_index = tuple(branch_index)

    # -- simulator interface -------------------------------------------------

    def load(self, ctx) -> None:
        """Add this element's contributions to the equation system.

        ``ctx`` is a :class:`repro.spice.mna.LoadContext`.  Implementations
        read the candidate solution through ``ctx.voltage(i)`` /
        ``ctx.x[i]`` and call ``ctx.add_i``, ``ctx.add_g``, ``ctx.add_q``
        and ``ctx.add_c``.
        """
        raise NotImplementedError

    def initial_guess(self, ctx) -> None:
        """Optionally bias the DC initial guess (e.g. junction voltages)."""

    def is_nonlinear(self) -> bool:
        """Whether the element's I or Q depends nonlinearly on ``x``."""
        return False

    # -- compiled-engine capability hooks --------------------------------------
    #
    # The compiled engine (:mod:`repro.spice.engine`) partitions elements at
    # compile time.  The default hooks classify any element by
    # :meth:`is_nonlinear` / :meth:`has_time_varying_rhs` alone; elements
    # mixing constant and bias-dependent stamps (BJT, diode with RS)
    # override :meth:`load_static` / :meth:`load_dynamic` so their constant
    # ohmic parasitics are stamped once into the cached matrices.  The
    # invariant is ``load == load_static + load_dynamic`` (plus, for
    # independent sources, the :meth:`rhs_rows` source-vector entries).

    def is_linear(self) -> bool:
        """Whether I and Q are linear (affine) functions of ``x``."""
        return not self.is_nonlinear()

    def has_time_varying_rhs(self) -> bool:
        """Whether the residual has an x-independent part that depends on
        time or ``source_scale`` (true for independent V/I sources)."""
        return False

    def load_static(self, ctx) -> None:
        """Stamp the contributions that are constant for a fixed topology:
        Jacobian entries independent of ``x``/time and their (linear)
        residual terms.  Called once at engine compile time, on a probe
        context with ``x = 0`` and ``source_scale = 0`` — so for a linear
        element (independent sources included) the plain :meth:`load`
        stamps exactly the constant Jacobian."""
        if self.is_linear():
            self.load(ctx)

    def load_dynamic(self, ctx) -> None:
        """Stamp the per-iteration (bias-dependent) contributions."""
        if self.is_nonlinear():
            self.load(ctx)

    # -- convenience ---------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.nodes}>"


class Circuit:
    """A flat netlist: a set of named elements connected at named nodes.

    >>> from repro.spice.elements import Resistor, VoltageSource
    >>> ckt = Circuit("divider")
    >>> _ = ckt.add(VoltageSource("V1", ("in", "0"), dc=10.0))
    >>> _ = ckt.add(Resistor("R1", ("in", "out"), 1e3))
    >>> _ = ckt.add(Resistor("R2", ("out", "0"), 1e3))
    """

    def __init__(self, title: str = "untitled"):
        self.title = title
        self._elements: dict[str, Element] = {}
        #: Node name -> equation index.  Ground is absent (index -1).
        self.node_map: dict[str, int] = {}
        self.num_unknowns = 0
        self._dirty = True
        #: Bumped on every topology/value change; compiled engines compare
        #: it against the generation they were built from.
        self._generation = 0

    # -- construction --------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add an element; returns it for chaining.

        Raises :class:`~repro.errors.NetlistError` on a duplicate name.
        """
        key = element.name.upper()
        if key in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._elements[key] = element
        self._dirty = True
        self._generation += 1
        return element

    def remove(self, name: str) -> Element:
        """Remove and return the element called ``name``."""
        try:
            element = self._elements.pop(name.upper())
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None
        self._dirty = True
        self._generation += 1
        return element

    def invalidate(self) -> None:
        """Mark cached compiled state stale after mutating an element value
        in place (e.g. changing a resistance).  Waveform changes on
        independent sources do *not* require this — source values are read
        per evaluation."""
        self._generation += 1

    def element(self, name: str) -> Element:
        """Look up an element by (case-insensitive) name."""
        try:
            return self._elements[name.upper()]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._elements

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def elements(self) -> list[Element]:
        return list(self._elements.values())

    def nodes(self) -> list[str]:
        """All non-ground node names, in equation order."""
        self.assign_indices()
        return sorted(self.node_map, key=self.node_map.get)

    # -- equation numbering ---------------------------------------------------

    def assign_indices(self) -> int:
        """Number node voltages then branch currents; return system size.

        Idempotent; re-run automatically after the circuit changes.
        """
        if not self._dirty:
            return self.num_unknowns
        self.node_map = {}
        for element in self._elements.values():
            for node in element.nodes:
                if node != "0" and node not in self.node_map:
                    self.node_map[node] = len(self.node_map)
        next_index = len(self.node_map)
        for element in self._elements.values():
            node_index = [
                -1 if n == "0" else self.node_map[n] for n in element.nodes
            ]
            branch_index = list(range(next_index, next_index + element.num_branches))
            next_index += element.num_branches
            element.bind(node_index, branch_index)
        self.num_unknowns = next_index
        self._dirty = False
        self._validate()
        return self.num_unknowns

    def _validate(self) -> None:
        if not self._elements:
            raise NetlistError("circuit is empty")
        has_ground = any("0" in e.nodes for e in self._elements.values())
        if not has_ground:
            raise NetlistError("circuit has no ground (node '0') connection")

    # -- result helpers --------------------------------------------------------

    def node_index(self, name: str) -> int:
        """Equation index of a node (-1 for ground)."""
        self.assign_indices()
        name = canonical_node(name)
        if name == "0":
            return -1
        try:
            return self.node_map[name]
        except KeyError:
            raise NetlistError(f"no node named {name!r}") from None

    def branch_index(self, element_name: str, branch: int = 0) -> int:
        """Equation index of an element's ``branch``-th current unknown."""
        self.assign_indices()
        element = self.element(element_name)
        if not element.branch_index:
            raise NetlistError(
                f"element {element_name!r} carries no branch current unknown"
            )
        if not 0 <= branch < len(element.branch_index):
            raise NetlistError(
                f"element {element_name!r} has "
                f"{len(element.branch_index)} branch unknown(s); "
                f"branch index {branch} is out of range"
            )
        return element.branch_index[branch]

    def branch_elements(self) -> list[str]:
        """Names of the elements that carry branch current unknowns."""
        self.assign_indices()
        return [e.name for e in self._elements.values() if e.branch_index]

    def unknown_name(self, index: int) -> str:
        """Human name of equation unknown ``index``.

        Nodes read ``V(name)``; branch currents ``I(element)`` (with a
        ``#k`` suffix for elements carrying several).  Used by the
        convergence forensics to point at the worst-behaved unknown.
        """
        self.assign_indices()
        if 0 <= index < len(self.node_map):
            for name, node_index in self.node_map.items():
                if node_index == index:
                    return f"V({name})"
        for element in self._elements.values():
            for k, branch_index in enumerate(element.branch_index):
                if branch_index == index:
                    if len(element.branch_index) == 1:
                        return f"I({element.name})"
                    return f"I({element.name}#{k})"
        return f"unknown[{index}]"

    def nonlinear_elements(self) -> list[Element]:
        """The elements requiring Newton iteration (BJTs, diodes)."""
        return [e for e in self._elements.values() if e.is_nonlinear()]

    def is_linear(self) -> bool:
        """True when no element is nonlinear (one LU solve suffices)."""
        return not self.nonlinear_elements()

    def extend(self, elements: Iterable[Element]) -> None:
        """Add several elements at once (same checks as :meth:`add`)."""
        for element in elements:
            self.add(element)

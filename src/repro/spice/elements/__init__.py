"""Circuit element library for the SPICE-class simulator."""

from .resistor import Resistor
from .capacitor import Capacitor
from .inductor import Inductor
from .sources import (
    DC,
    PWL,
    CurrentSource,
    Pulse,
    Sine,
    VoltageSource,
    Waveform,
)
from .controlled import CCCS, CCVS, VCCS, VCVS
from .diode import Diode, DiodeModel
from .bjt import BJT

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Waveform",
    "DC",
    "Sine",
    "Pulse",
    "PWL",
    "VCCS",
    "VCVS",
    "CCCS",
    "CCVS",
    "Diode",
    "DiodeModel",
    "BJT",
]

"""Linear inductor element."""

from __future__ import annotations

from ...errors import NetlistError
from ..netlist import Element


class Inductor(Element):
    """A linear inductance between two nodes.

    Formulated with a branch current unknown ``i`` and a flux entry in the
    charge vector: node rows carry ``±i``, and the branch row carries
    ``(vp - vn)`` in I and ``-L*i`` in Q, i.e. ``vp - vn - L di/dt = 0``.
    In DC the flux term vanishes and the inductor is a short.
    """

    num_branches = 1

    def __init__(self, name: str, nodes, inductance: float, ic: float | None = None):
        super().__init__(name, nodes)
        if len(self.nodes) != 2:
            raise NetlistError(f"inductor {name} needs 2 nodes")
        if inductance <= 0:
            raise NetlistError(
                f"inductor {name}: inductance must be positive, got {inductance}"
            )
        self.inductance = float(inductance)
        self.ic = ic

    def load(self, ctx) -> None:
        p, n = self.node_index
        (br,) = self.branch_index
        i = ctx.x[br]
        ctx.add_i(p, i)
        ctx.add_g(p, br, 1.0)
        ctx.add_i(n, -i)
        ctx.add_g(n, br, -1.0)
        ctx.add_i(br, ctx.voltage(p) - ctx.voltage(n))
        ctx.add_g(br, p, 1.0)
        ctx.add_g(br, n, -1.0)
        ctx.add_q(br, -self.inductance * i)
        ctx.add_c(br, br, -self.inductance)

"""Linear resistor element."""

from __future__ import annotations

from ...errors import NetlistError
from ..netlist import Element


class Resistor(Element):
    """A linear resistance between two nodes.

    ``R <p> <n> <ohms>`` in deck syntax.  Zero or negative resistance is
    rejected — a zero-ohm connection should be made by merging nodes.
    """

    def __init__(self, name: str, nodes, resistance: float):
        super().__init__(name, nodes)
        if len(self.nodes) != 2:
            raise NetlistError(f"resistor {name} needs 2 nodes")
        if resistance <= 0:
            raise NetlistError(
                f"resistor {name}: resistance must be positive, got {resistance}"
            )
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def load(self, ctx) -> None:
        p, n = self.node_index
        ctx.stamp_conductance(p, n, self.conductance)

"""Independent voltage and current sources with SPICE waveforms.

Waveform objects provide the time-domain value (``value(t)``), the DC
value used by operating-point analyses (``dc_value()``), and optionally an
AC small-signal magnitude/phase used by AC analysis.
"""

from __future__ import annotations

import cmath
import math
from bisect import bisect_right
from typing import Sequence

from ...errors import NetlistError
from ..netlist import Element


class Waveform:
    """Base class for source waveforms."""

    def value(self, time: float | None) -> float:
        raise NotImplementedError

    def dc_value(self) -> float:
        return self.value(None)


class DC(Waveform):
    """A constant source value."""

    def __init__(self, level: float = 0.0):
        self.level = float(level)

    def value(self, time: float | None) -> float:
        return self.level

    def __repr__(self) -> str:
        return f"DC({self.level})"


class Sine(Waveform):
    """SPICE ``SIN(VO VA FREQ TD THETA)`` waveform.

    v(t) = VO                                       for t < TD
    v(t) = VO + VA*exp(-(t-TD)*THETA)*sin(2*pi*FREQ*(t-TD))   otherwise
    """

    def __init__(
        self,
        offset: float = 0.0,
        amplitude: float = 1.0,
        frequency: float = 1.0,
        delay: float = 0.0,
        damping: float = 0.0,
        phase_deg: float = 0.0,
    ):
        if frequency <= 0:
            raise NetlistError(f"SIN waveform frequency must be positive")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.delay = float(delay)
        self.damping = float(damping)
        self.phase_deg = float(phase_deg)

    def value(self, time: float | None) -> float:
        if time is None:
            return self.offset
        if time < self.delay:
            return self.offset + self.amplitude * math.sin(
                math.radians(self.phase_deg)
            )
        t = time - self.delay
        envelope = math.exp(-t * self.damping) if self.damping else 1.0
        phase = 2.0 * math.pi * self.frequency * t + math.radians(self.phase_deg)
        return self.offset + self.amplitude * envelope * math.sin(phase)


class Pulse(Waveform):
    """SPICE ``PULSE(V1 V2 TD TR TF PW PER)`` waveform."""

    def __init__(
        self,
        v1: float,
        v2: float,
        delay: float = 0.0,
        rise: float = 1e-12,
        fall: float = 1e-12,
        width: float = 1e-9,
        period: float | None = None,
    ):
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.delay = float(delay)
        self.rise = max(float(rise), 1e-15)
        self.fall = max(float(fall), 1e-15)
        self.width = float(width)
        if period is None:
            period = self.delay + self.rise + self.width + self.fall
        self.period = float(period)
        min_period = self.rise + self.width + self.fall
        if self.period < min_period:
            raise NetlistError(
                f"PULSE period {self.period} shorter than rise+width+fall {min_period}"
            )

    def value(self, time: float | None) -> float:
        if time is None or time <= self.delay:
            return self.v1
        t = (time - self.delay) % self.period
        if t < self.rise:
            return self.v1 + (self.v2 - self.v1) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.v2
        t -= self.width
        if t < self.fall:
            return self.v2 + (self.v1 - self.v2) * t / self.fall
        return self.v1

    def breakpoints(self, stop_time: float) -> list[float]:
        """Waveform corner times in [0, stop_time], for step control."""
        points: list[float] = []
        start = self.delay
        while start < stop_time:
            for corner in (
                start,
                start + self.rise,
                start + self.rise + self.width,
                start + self.rise + self.width + self.fall,
            ):
                if 0.0 < corner < stop_time:
                    points.append(corner)
            start += self.period
            if self.period <= 0:
                break
        return points


class PWL(Waveform):
    """Piecewise-linear waveform from (time, value) pairs."""

    def __init__(self, points: Sequence[tuple[float, float]]):
        if len(points) < 1:
            raise NetlistError("PWL waveform needs at least one point")
        self.points = sorted((float(t), float(v)) for t, v in points)
        self._times = [t for t, _ in self.points]

    def value(self, time: float | None) -> float:
        if time is None:
            return self.points[0][1]
        if time <= self.points[0][0]:
            return self.points[0][1]
        if time >= self.points[-1][0]:
            return self.points[-1][1]
        hi = bisect_right(self._times, time)
        t0, v0 = self.points[hi - 1]
        t1, v1 = self.points[hi]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (time - t0) / (t1 - t0)

    def breakpoints(self, stop_time: float) -> list[float]:
        return [t for t, _ in self.points if 0.0 < t < stop_time]


def _as_waveform(value) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DC(float(value))


class _IndependentSource(Element):
    """Shared behaviour of V and I sources: waveform plus AC stimulus."""

    def __init__(
        self,
        name: str,
        nodes,
        dc=0.0,
        ac_mag: float = 0.0,
        ac_phase_deg: float = 0.0,
    ):
        super().__init__(name, nodes)
        if len(self.nodes) != 2:
            raise NetlistError(f"source {name} needs 2 nodes")
        self.waveform = _as_waveform(dc)
        self.ac_mag = float(ac_mag)
        self.ac_phase_deg = float(ac_phase_deg)

    def ac_stimulus(self) -> complex:
        """Complex AC amplitude (0 when the source is quiet in AC)."""
        if self.ac_mag == 0.0:
            return 0.0 + 0.0j
        return self.ac_mag * cmath.exp(1j * math.radians(self.ac_phase_deg))

    def source_value(self, time: float | None) -> float:
        return self.waveform.value(time)

    def breakpoints(self, stop_time: float) -> list[float]:
        if hasattr(self.waveform, "breakpoints"):
            return self.waveform.breakpoints(stop_time)
        return []

    # -- compiled-engine hooks -------------------------------------------------

    def has_time_varying_rhs(self) -> bool:
        return True

    def rhs_rows(self) -> list[tuple[int, float]]:
        """Residual rows receiving ``coeff * value(t) * source_scale``.

        Together with the constant Jacobian (stamped at compile time) this
        reproduces :meth:`load` exactly: the compiled engine adds
        ``coeff * source_value(time) * scale`` at each listed row per
        evaluation instead of re-stamping the element.
        """
        raise NotImplementedError


class VoltageSource(_IndependentSource):
    """Independent voltage source; carries a branch current unknown.

    Positive branch current flows into the + terminal (node p), through
    the source, and out of the - terminal — the SPICE convention, so a
    battery delivering power reports a negative current.
    """

    num_branches = 1

    def load(self, ctx) -> None:
        p, n = self.node_index
        (br,) = self.branch_index
        i = ctx.x[br]
        ctx.add_i(p, i)
        ctx.add_g(p, br, 1.0)
        ctx.add_i(n, -i)
        ctx.add_g(n, br, -1.0)
        value = self.source_value(ctx.time) * ctx.source_scale
        ctx.add_i(br, ctx.voltage(p) - ctx.voltage(n) - value)
        ctx.add_g(br, p, 1.0)
        ctx.add_g(br, n, -1.0)

    def rhs_rows(self) -> list[tuple[int, float]]:
        return [(self.branch_index[0], -1.0)]


class CurrentSource(_IndependentSource):
    """Independent current source.

    Positive current flows from node p through the source to node n
    (SPICE convention), i.e. it is *drawn out of* node p.
    """

    def load(self, ctx) -> None:
        p, n = self.node_index
        value = self.source_value(ctx.time) * ctx.source_scale
        ctx.stamp_current_source(p, n, value)

    def rhs_rows(self) -> list[tuple[int, float]]:
        p, n = self.node_index
        return [(row, coeff) for row, coeff in ((p, 1.0), (n, -1.0))
                if row >= 0]

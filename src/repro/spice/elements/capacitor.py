"""Linear capacitor element."""

from __future__ import annotations

from ...errors import NetlistError
from ..netlist import Element


class Capacitor(Element):
    """A linear capacitance between two nodes.

    ``C <p> <n> <farads> [ic=<volts>]``.  The optional initial condition is
    applied when a transient analysis starts from user ICs (``uic``).
    """

    def __init__(self, name: str, nodes, capacitance: float, ic: float | None = None):
        super().__init__(name, nodes)
        if len(self.nodes) != 2:
            raise NetlistError(f"capacitor {name} needs 2 nodes")
        if capacitance < 0:
            raise NetlistError(
                f"capacitor {name}: capacitance must be non-negative, got {capacitance}"
            )
        self.capacitance = float(capacitance)
        self.ic = ic

    def load(self, ctx) -> None:
        p, n = self.node_index
        ctx.stamp_capacitance(p, n, self.capacitance)

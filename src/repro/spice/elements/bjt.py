"""Gummel-Poon bipolar junction transistor element.

``Q <collector> <base> <emitter> [substrate] <model> [area]``.

Nonzero RC, RB, RE each allocate one internal node; the Gummel-Poon
equations (in :mod:`repro.devices.gummel_poon`) are evaluated at the
internal junction voltages.  pnp devices are handled by evaluating the
npn-oriented equations at sign-flipped voltages and flipping the stamped
currents/charges back; the Jacobian entries are sign-free.
"""

from __future__ import annotations

from ...devices.gummel_poon import (
    critical_voltage,
    depletion_charge,
    evaluate,
    pnjlim,
    thermal_voltage,
)
from ...devices.parameters import GummelPoonParameters
from ...errors import NetlistError
from ..netlist import Element


class BJT(Element):
    """A Gummel-Poon BJT instance bound to a model card and area factor."""

    def __init__(
        self,
        name: str,
        nodes,
        model: GummelPoonParameters,
        area: float = 1.0,
    ):
        if len(nodes) == 3:
            nodes = tuple(nodes) + ("0",)
        super().__init__(name, nodes)
        if len(self.nodes) != 4:
            raise NetlistError(f"BJT {name} needs 3 or 4 nodes (C B E [S])")
        if area <= 0:
            raise NetlistError(f"BJT {name}: area must be positive")
        self.model = model
        self.area = float(area)
        self.params = model if area == 1.0 else model.scaled_by_area(area)
        p = self.params
        self._has_rc = p.RC > 0.0
        self._has_rb = p.RB > 0.0
        self._has_re = p.RE > 0.0
        self.num_branches = sum((self._has_rc, self._has_rb, self._has_re))
        self._vt = thermal_voltage(p.TNOM)
        self._vcrit_be = critical_voltage(p.IS, p.NF * self._vt)
        self._vcrit_bc = critical_voltage(p.IS, p.NR * self._vt)
        self.sign = p.sign

    def is_nonlinear(self) -> bool:
        return True

    def _internal_indices(self) -> tuple[int, int, int]:
        """(ci, bi, ei) equation indices, falling back to external nodes."""
        c, b, e, _ = self.node_index
        branches = iter(self.branch_index)
        ci = next(branches) if self._has_rc else c
        bi = next(branches) if self._has_rb else b
        ei = next(branches) if self._has_re else e
        return ci, bi, ei

    def load(self, ctx) -> None:
        self.load_static(ctx)
        self.load_dynamic(ctx)

    def load_static(self, ctx) -> None:
        """Constant ohmic parasitics: RC and RE (RB is bias-modulated)."""
        p = self.params
        c, _b, e, _s = self.node_index
        ci, _bi, ei = self._internal_indices()
        if self._has_rc:
            ctx.stamp_conductance(c, ci, 1.0 / p.RC)
        if self._has_re:
            ctx.stamp_conductance(e, ei, 1.0 / p.RE)

    def load_dynamic(self, ctx) -> None:
        p = self.params
        sign = self.sign
        _c, b, _e, s = self.node_index
        ci, bi, ei = self._internal_indices()

        vbe_raw = sign * (ctx.voltage(bi) - ctx.voltage(ei))
        vbc_raw = sign * (ctx.voltage(bi) - ctx.voltage(ci))
        vbe_old, vbc_old = ctx.limits.get(self.name, (vbe_raw, vbc_raw))
        vbe = pnjlim(vbe_raw, vbe_old, p.NF * self._vt, self._vcrit_be)
        vbc = pnjlim(vbc_raw, vbc_old, p.NR * self._vt, self._vcrit_bc)
        ctx.limits[self.name] = (vbe, vbc)

        op = evaluate(p, vbe, vbc, gmin=ctx.gmin)
        dbe = vbe_raw - vbe
        dbc = vbc_raw - vbc

        # Bias-modulated base resistance (through qb).
        if self._has_rb:
            ctx.stamp_conductance(b, bi, 1.0 / max(op.rbb, 1e-3))

        # Terminal currents (residual-consistent companion form).
        ic = op.ic + op.dic_dvbe * dbe + op.dic_dvbc * dbc
        ib = op.ib + op.dib_dvbe * dbe + op.dib_dvbc * dbc
        ctx.add_i(ci, sign * ic)
        ctx.add_i(bi, sign * ib)
        ctx.add_i(ei, -sign * (ic + ib))

        # Jacobian of the currents w.r.t. (Vci, Vbi, Vei); sign-free.
        for row, d_dvbe, d_dvbc in (
            (ci, op.dic_dvbe, op.dic_dvbc),
            (bi, op.dib_dvbe, op.dib_dvbc),
            (ei, -(op.dic_dvbe + op.dib_dvbe), -(op.dic_dvbc + op.dib_dvbc)),
        ):
            ctx.add_g(row, bi, d_dvbe + d_dvbc)
            ctx.add_g(row, ei, -d_dvbe)
            ctx.add_g(row, ci, -d_dvbc)

        # Charges: B'-E', B'-C' (internal), B-C' (external fraction).
        qbe = op.qbe + op.dqbe_dvbe * dbe + op.dqbe_dvbc * dbc
        self._stamp_charge_pair(ctx, bi, ei, sign * qbe)
        ctx.add_c(bi, bi, op.dqbe_dvbe)
        ctx.add_c(bi, ei, -op.dqbe_dvbe)
        ctx.add_c(ei, bi, -op.dqbe_dvbe)
        ctx.add_c(ei, ei, op.dqbe_dvbe)
        if op.dqbe_dvbc:
            ctx.add_c(bi, bi, op.dqbe_dvbc)
            ctx.add_c(bi, ci, -op.dqbe_dvbc)
            ctx.add_c(ei, bi, -op.dqbe_dvbc)
            ctx.add_c(ei, ci, op.dqbe_dvbc)

        qbc = op.qbc + op.dqbc_dvbc * dbc
        self._stamp_charge_pair(ctx, bi, ci, sign * qbc)
        ctx.add_c(bi, bi, op.dqbc_dvbc)
        ctx.add_c(bi, ci, -op.dqbc_dvbc)
        ctx.add_c(ci, bi, -op.dqbc_dvbc)
        ctx.add_c(ci, ci, op.dqbc_dvbc)

        if p.XCJC < 1.0:
            vbx = sign * (ctx.voltage(b) - ctx.voltage(ci))
            qbx, cbx = depletion_charge(
                vbx, p.CJC * (1.0 - p.XCJC), p.VJC, p.MJC, p.FC
            )
            self._stamp_charge_pair(ctx, b, ci, sign * qbx)
            ctx.add_c(b, b, cbx)
            ctx.add_c(b, ci, -cbx)
            ctx.add_c(ci, b, -cbx)
            ctx.add_c(ci, ci, cbx)

        # Collector-substrate junction (reverse-biased in normal operation).
        if p.CJS > 0.0:
            vsc = sign * (ctx.voltage(s) - ctx.voltage(ci))
            qjs, cjs = depletion_charge(vsc, p.CJS, p.VJS, p.MJS, p.FC)
            self._stamp_charge_pair(ctx, s, ci, sign * qjs)
            ctx.add_c(s, s, cjs)
            ctx.add_c(s, ci, -cjs)
            ctx.add_c(ci, s, -cjs)
            ctx.add_c(ci, ci, cjs)

    @staticmethod
    def _stamp_charge_pair(ctx, p_row: int, n_row: int, charge: float) -> None:
        ctx.add_q(p_row, charge)
        ctx.add_q(n_row, -charge)

    # -- diagnostics -----------------------------------------------------------

    def operating_point(self, x, limits=None):
        """Device operating point at a converged solution vector ``x``.

        Returns the :class:`~repro.devices.gummel_poon.BJTOperatingPoint`
        at the internal junction voltages implied by ``x``.
        """
        ci, bi, ei = self._internal_indices()

        def voltage(index: int) -> float:
            return 0.0 if index < 0 else float(x[index])

        vbe = self.sign * (voltage(bi) - voltage(ei))
        vbc = self.sign * (voltage(bi) - voltage(ci))
        return evaluate(self.params, vbe, vbc)

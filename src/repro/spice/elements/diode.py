"""Junction diode element."""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from ...devices.gummel_poon import (
    critical_voltage,
    depletion_charge,
    diode_current,
    pnjlim,
    thermal_voltage,
)
from ...errors import ModelError, NetlistError
from ..netlist import Element


@dataclass(frozen=True)
class DiodeModel:
    """SPICE diode model parameters (subset: DC, depletion, diffusion)."""

    name: str = "D"
    IS: float = 1e-14  #: saturation current
    N: float = 1.0  #: emission coefficient
    RS: float = 0.0  #: series resistance
    CJO: float = 0.0  #: zero-bias junction capacitance
    VJ: float = 1.0  #: built-in potential
    M: float = 0.5  #: grading coefficient
    FC: float = 0.5  #: forward-bias depletion coefficient
    TT: float = 0.0  #: transit time
    TNOM: float = 300.15

    def __post_init__(self):
        if self.IS <= 0 or self.N <= 0:
            raise ModelError(f"{self.name}: IS and N must be positive")
        if self.RS < 0 or self.CJO < 0 or self.TT < 0:
            raise ModelError(f"{self.name}: RS, CJO, TT must be non-negative")
        if not 0 < self.FC < 1:
            raise ModelError(f"{self.name}: FC must be in (0, 1)")

    @classmethod
    def from_card_params(cls, name: str, params: dict[str, float]) -> "DiodeModel":
        known = {f.name.upper(): f.name for f in fields(cls)}
        kwargs = {}
        for key, value in params.items():
            attr = known.get(key.upper())
            if attr is None or attr == "name":
                raise ModelError(f"unknown diode model parameter {key!r}")
            kwargs[attr] = value
        return cls(name=name, **kwargs)


class Diode(Element):
    """A junction diode ``D <anode> <cathode> <model> [area]``.

    Nonzero RS adds one internal node.  Junction voltage limiting
    (pnjlim) keeps Newton iterations stable.
    """

    def __init__(self, name: str, nodes, model: DiodeModel, area: float = 1.0):
        super().__init__(name, nodes)
        if len(self.nodes) != 2:
            raise NetlistError(f"diode {name} needs 2 nodes")
        if area <= 0:
            raise NetlistError(f"diode {name}: area must be positive")
        self.model = model
        self.area = float(area)
        self.i_sat = model.IS * area
        self.cj0 = model.CJO * area
        self.rs = model.RS / area
        self.num_branches = 1 if self.rs > 0 else 0
        self._vt = thermal_voltage(model.TNOM)
        self._vcrit = critical_voltage(self.i_sat, model.N * self._vt)

    def is_nonlinear(self) -> bool:
        return True

    def load(self, ctx) -> None:
        self.load_static(ctx)
        self.load_dynamic(ctx)

    def load_static(self, ctx) -> None:
        """Constant series resistance RS (when present)."""
        if self.rs > 0:
            anode, _cathode = self.node_index
            (internal,) = self.branch_index
            ctx.stamp_conductance(anode, internal, 1.0 / self.rs)

    def load_dynamic(self, ctx) -> None:
        anode, cathode = self.node_index
        junction_p = self.branch_index[0] if self.rs > 0 else anode
        m = self.model
        n_vt = m.N * self._vt

        v_raw = ctx.voltage(junction_p) - ctx.voltage(cathode)
        v_old = ctx.limits.get(self.name, v_raw)
        v_lim = pnjlim(v_raw, v_old, n_vt, self._vcrit)
        ctx.limits[self.name] = v_lim

        current, conductance = diode_current(self.i_sat, v_lim, n_vt)
        current += ctx.gmin * v_lim
        conductance += ctx.gmin
        # Companion (residual-consistent) form.
        i_stamp = current + conductance * (v_raw - v_lim)
        ctx.add_i(junction_p, i_stamp)
        ctx.add_i(cathode, -i_stamp)
        ctx.add_g(junction_p, junction_p, conductance)
        ctx.add_g(junction_p, cathode, -conductance)
        ctx.add_g(cathode, junction_p, -conductance)
        ctx.add_g(cathode, cathode, conductance)

        q_dep, c_dep = depletion_charge(v_lim, self.cj0, m.VJ, m.M, m.FC)
        charge = q_dep + m.TT * current
        cap = c_dep + m.TT * conductance
        q_stamp = charge + cap * (v_raw - v_lim)
        ctx.add_q(junction_p, q_stamp)
        ctx.add_q(cathode, -q_stamp)
        ctx.add_c(junction_p, junction_p, cap)
        ctx.add_c(junction_p, cathode, -cap)
        ctx.add_c(cathode, junction_p, -cap)
        ctx.add_c(cathode, cathode, cap)

    def junction_voltage(self, ctx_or_limits) -> float:
        """Last limited junction voltage (diagnostic helper)."""
        limits = getattr(ctx_or_limits, "limits", ctx_or_limits)
        return limits.get(self.name, 0.0)

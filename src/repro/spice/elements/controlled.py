"""Linear controlled sources (SPICE E, G, F, H elements)."""

from __future__ import annotations

from ...errors import NetlistError
from ..netlist import Element
from .sources import VoltageSource


class VCCS(Element):
    """Voltage-controlled current source (G element).

    Output current ``gm * (v(cp) - v(cn))`` flows from node p through the
    source to node n.  Nodes are ``(p, n, cp, cn)``.
    """

    def __init__(self, name: str, nodes, gm: float):
        super().__init__(name, nodes)
        if len(self.nodes) != 4:
            raise NetlistError(f"VCCS {name} needs 4 nodes (out+, out-, c+, c-)")
        self.gm = float(gm)

    def load(self, ctx) -> None:
        p, n, cp, cn = self.node_index
        vc = ctx.voltage(cp) - ctx.voltage(cn)
        current = self.gm * vc
        ctx.add_i(p, current)
        ctx.add_i(n, -current)
        ctx.add_g(p, cp, self.gm)
        ctx.add_g(p, cn, -self.gm)
        ctx.add_g(n, cp, -self.gm)
        ctx.add_g(n, cn, self.gm)


class VCVS(Element):
    """Voltage-controlled voltage source (E element).

    ``v(p) - v(n) = gain * (v(cp) - v(cn))``; nodes are ``(p, n, cp, cn)``.
    """

    num_branches = 1

    def __init__(self, name: str, nodes, gain: float):
        super().__init__(name, nodes)
        if len(self.nodes) != 4:
            raise NetlistError(f"VCVS {name} needs 4 nodes (out+, out-, c+, c-)")
        self.gain = float(gain)

    def load(self, ctx) -> None:
        p, n, cp, cn = self.node_index
        (br,) = self.branch_index
        i = ctx.x[br]
        ctx.add_i(p, i)
        ctx.add_g(p, br, 1.0)
        ctx.add_i(n, -i)
        ctx.add_g(n, br, -1.0)
        residual = (
            ctx.voltage(p)
            - ctx.voltage(n)
            - self.gain * (ctx.voltage(cp) - ctx.voltage(cn))
        )
        ctx.add_i(br, residual)
        ctx.add_g(br, p, 1.0)
        ctx.add_g(br, n, -1.0)
        ctx.add_g(br, cp, -self.gain)
        ctx.add_g(br, cn, self.gain)


class _CurrentControlled(Element):
    """Shared control-branch lookup for F and H elements."""

    def __init__(self, name: str, nodes, control: VoltageSource, coefficient: float):
        super().__init__(name, nodes)
        if len(self.nodes) != 2:
            raise NetlistError(f"{name} needs 2 nodes")
        if not isinstance(control, VoltageSource):
            raise NetlistError(
                f"{name}: controlling element must be a voltage source, "
                f"got {type(control).__name__}"
            )
        self.control = control
        self.coefficient = float(coefficient)

    def _control_branch(self) -> int:
        if not self.control.branch_index:
            raise NetlistError(
                f"{self.name}: controlling source {self.control.name} has no "
                "branch index — is it part of the same circuit?"
            )
        return self.control.branch_index[0]


class CCCS(_CurrentControlled):
    """Current-controlled current source (F element).

    Output current ``gain * i(control)`` flows from node p to node n.
    """

    def load(self, ctx) -> None:
        p, n = self.node_index
        cbr = self._control_branch()
        i = self.coefficient * ctx.x[cbr]
        ctx.add_i(p, i)
        ctx.add_i(n, -i)
        ctx.add_g(p, cbr, self.coefficient)
        ctx.add_g(n, cbr, -self.coefficient)


class CCVS(_CurrentControlled):
    """Current-controlled voltage source (H element).

    ``v(p) - v(n) = r * i(control)``; adds its own branch current.
    """

    num_branches = 1

    def load(self, ctx) -> None:
        p, n = self.node_index
        (br,) = self.branch_index
        cbr = self._control_branch()
        i = ctx.x[br]
        ctx.add_i(p, i)
        ctx.add_g(p, br, 1.0)
        ctx.add_i(n, -i)
        ctx.add_g(n, br, -1.0)
        residual = ctx.voltage(p) - ctx.voltage(n) - self.coefficient * ctx.x[cbr]
        ctx.add_i(br, residual)
        ctx.add_g(br, p, 1.0)
        ctx.add_g(br, n, -1.0)
        ctx.add_g(br, cbr, -self.coefficient)

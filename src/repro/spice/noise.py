"""Small-signal noise analysis.

"In such CATV tuner systems, distortion, noise and image signal are main
concerns in circuit design" — this module adds the noise leg: classic
SPICE ``.NOISE``-style analysis of the linearized circuit.

Method: the adjoint (transpose) system.  With the AC system
``A(w) x = b``, the transfer of a noise *current* injected between nodes
p and n to the output voltage is ``y_n - y_p`` where
``A(w)^T y = e_out``.  One adjoint solve per frequency prices every
noise source in the circuit simultaneously.

Modelled sources:

* resistor thermal noise        4kT/R          (current, across R)
* diode shot noise              2q*Id          (across the junction)
* BJT collector shot noise      2q*Ic          (internal C' to E')
* BJT base shot noise           2q*Ib          (internal B' to E')
* BJT flicker noise             KF*Ib^AF/f     (internal B' to E')
* BJT ohmic rbb/RE/RC thermal   4kT/Rx         (across each resistance)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from .dcop import solve_dc
from .elements.bjt import BJT
from .elements.diode import Diode
from .elements.resistor import Resistor
from .engine import EngineStats, resolve_engine
from .netlist import Circuit

#: Boltzmann constant (J/K) and electron charge (C).
BOLTZMANN = 1.380649e-23
ELECTRON_CHARGE = 1.602176634e-19

#: Analysis temperature (K) for 4kT terms.
NOISE_TEMPERATURE = 300.15


@dataclass(frozen=True)
class NoiseSource:
    """One noise current source: PSD(f) injected from node p to node n."""

    element: str
    kind: str  #: "thermal" | "shot" | "flicker"
    p: int  #: equation index (-1 = ground)
    n: int
    psd: object  #: callable f -> A^2/Hz

    def density(self, frequency: float) -> float:
        return self.psd(frequency)


def _thermal_psd(resistance: float):
    level = 4.0 * BOLTZMANN * NOISE_TEMPERATURE / resistance
    return lambda f: level


def _shot_psd(current: float):
    level = 2.0 * ELECTRON_CHARGE * abs(current)
    return lambda f: level


def _flicker_psd(kf: float, af: float, current: float):
    numerator = kf * abs(current) ** af

    def psd(frequency: float) -> float:
        return numerator / max(frequency, 1e-6)

    return psd


def collect_noise_sources(circuit: Circuit, x_op: np.ndarray,
                          limits: dict) -> list[NoiseSource]:
    """Enumerate every noise source at the DC operating point."""
    sources: list[NoiseSource] = []
    for element in circuit:
        if isinstance(element, Resistor):
            # Zero/negative resistances (ideal shorts, behavioral
            # negative-R elements) carry no thermal noise; including
            # them would divide by zero in the 4kT/R density.
            if element.resistance <= 0.0:
                continue
            p, n = element.node_index
            sources.append(NoiseSource(element.name, "thermal", p, n,
                                       _thermal_psd(element.resistance)))
        elif isinstance(element, Diode):
            anode, cathode = element.node_index
            junction_p = (element.branch_index[0]
                          if element.rs > 0 else anode)
            v_lim = limits.get(element.name, 0.0)
            current, _ = _diode_current_at(element, v_lim)
            sources.append(NoiseSource(element.name, "shot", junction_p,
                                       cathode, _shot_psd(current)))
            if element.rs > 0:
                sources.append(NoiseSource(
                    element.name + ":rs", "thermal", anode, junction_p,
                    _thermal_psd(element.rs),
                ))
        elif isinstance(element, BJT):
            sources.extend(_bjt_sources(element, x_op))
    return sources


def _diode_current_at(element: Diode, v: float) -> tuple[float, float]:
    from ..devices.gummel_poon import diode_current

    return diode_current(element.i_sat, v, element.model.N
                         * _vt_of(element.model.TNOM))


def _vt_of(tnom: float) -> float:
    from ..devices.gummel_poon import thermal_voltage

    return thermal_voltage(tnom)


def _bjt_sources(element: BJT, x_op: np.ndarray) -> list[NoiseSource]:
    params = element.params
    op = element.operating_point(x_op)
    c, b, e, _s = element.node_index
    ci, bi, ei = element._internal_indices()
    sources = [
        NoiseSource(element.name + ":ic", "shot", ci, ei,
                    _shot_psd(op.ic)),
        NoiseSource(element.name + ":ib", "shot", bi, ei,
                    _shot_psd(op.ib)),
    ]
    if params.KF > 0.0:
        sources.append(NoiseSource(
            element.name + ":flicker", "flicker", bi, ei,
            _flicker_psd(params.KF, params.AF, op.ib),
        ))
    if element._has_rb:
        sources.append(NoiseSource(element.name + ":rb", "thermal", b, bi,
                                   _thermal_psd(max(op.rbb, 1e-3))))
    if element._has_re:
        sources.append(NoiseSource(element.name + ":re", "thermal", e, ei,
                                   _thermal_psd(params.RE)))
    if element._has_rc:
        sources.append(NoiseSource(element.name + ":rc", "thermal", c, ci,
                                   _thermal_psd(params.RC)))
    return sources


@dataclass
class NoiseResult:
    """Output noise spectrum with per-source breakdown."""

    circuit: Circuit
    output_node: str
    frequencies: np.ndarray
    #: total output noise voltage density squared, V^2/Hz, per frequency
    output_density: np.ndarray
    #: element/source name -> V^2/Hz array
    contributions: dict[str, np.ndarray]
    #: |H(f)|^2 from the designated input source to the output (None when
    #: no input source was given)
    gain_squared: np.ndarray | None = None
    #: Engine work performed by this analysis.
    stats: EngineStats | None = None

    def output_rms_density(self, frequency: float) -> float:
        """Output noise density in V/sqrt(Hz), interpolated."""
        return float(np.sqrt(np.interp(frequency, self.frequencies,
                                       self.output_density)))

    def input_referred_density(self) -> np.ndarray:
        """Input-referred noise V^2/Hz (needs an input source)."""
        if self.gain_squared is None:
            raise AnalysisError("no input source was designated")
        return self.output_density / np.maximum(self.gain_squared, 1e-300)

    def integrated_output_noise(self) -> float:
        """Total output noise voltage (V rms) over the swept band."""
        return float(np.sqrt(np.trapezoid(self.output_density,
                                          self.frequencies)))

    def dominant_contributors(self, frequency: float,
                              count: int = 5) -> list[tuple[str, float]]:
        """The ``count`` largest contributors at one frequency."""
        index = int(np.argmin(np.abs(self.frequencies - frequency)))
        ranked = sorted(
            ((name, values[index]) for name, values in
             self.contributions.items()),
            key=lambda item: item[1], reverse=True,
        )
        return ranked[:count]

    def noise_figure_db(self, source_contribution_name: str) -> np.ndarray:
        """Spot noise figure: F = total / (source-resistor contribution).

        ``source_contribution_name`` names the resistor standing for the
        generator impedance (e.g. ``"RS"``).
        """
        source = self.contributions.get(source_contribution_name)
        if source is None:
            raise AnalysisError(
                f"no noise contribution from {source_contribution_name!r}"
            )
        factor = self.output_density / np.maximum(source, 1e-300)
        return 10.0 * np.log10(np.maximum(factor, 1.0))


def solve_noise(
    circuit: Circuit,
    output_node: str,
    frequencies,
    input_source: str | None = None,
    gmin: float = 1e-12,
    engine=None,
    batched: bool = True,
) -> NoiseResult:
    """Run a noise analysis at the DC operating point.

    ``output_node`` is where the output noise is summed; ``input_source``
    (a V or I source name) enables input-referred quantities.  With
    ``batched=True`` the adjoint systems of a whole frequency block are
    solved as one stacked call (see :func:`repro.spice.ac.solve_ac`);
    ``batched=False`` keeps the per-frequency reference loop.
    """
    frequencies = np.asarray(list(frequencies), dtype=float)
    if len(frequencies) == 0:
        raise AnalysisError("noise analysis needs at least one frequency")
    engine = resolve_engine(circuit, engine)
    snapshot = engine.stats.copy()
    with engine.timed():
        result = _solve_noise(
            circuit, engine, output_node, frequencies, input_source, gmin,
            batched,
        )
    result.stats = engine.stats.since(snapshot)
    return result


def _solve_noise(
    circuit, engine, output_node, frequencies, input_source, gmin, batched
) -> NoiseResult:
    limits: dict = {}
    x_op = solve_dc(circuit, gmin=gmin, limits=limits, engine=engine)
    ctx = engine.evaluate(x_op, gmin=gmin, limits=limits)
    # Copies: the frequency loop below must survive later evaluations.
    g_mat, c_mat = ctx.g_mat.copy(), ctx.c_mat.copy()

    out_index = circuit.node_index(output_node)
    if out_index < 0:
        raise AnalysisError("output node cannot be ground")
    sources = collect_noise_sources(circuit, x_op, limits)
    if not sources:
        raise AnalysisError("circuit contains no noise sources")

    size = circuit.num_unknowns
    e_out = np.zeros(size)
    e_out[out_index] = 1.0

    total = np.zeros(len(frequencies))
    contributions = {s.element: np.zeros(len(frequencies)) for s in sources}
    gain_squared = None
    input_element = None
    if input_source is not None:
        input_element = circuit.element(input_source)
        gain_squared = np.zeros(len(frequencies))

    solve_batched = getattr(engine, "solve_batched", None)
    sparse = getattr(engine, "assembly", "dense") == "sparse"
    if batched and (sparse or solve_batched is not None) \
            and len(frequencies) > 1:
        from .ac import ac_block_size

        count = len(frequencies)
        adjoints = np.empty((count, size), dtype=complex)
        input_solutions = None
        rhs_in = None
        if input_element is not None:
            rhs_in = _input_rhs(input_element, size)
            input_solutions = np.empty((count, size), dtype=complex)
        omegas = 2.0 * math.pi * frequencies
        if sparse:
            # Flat (block, nnz) value stacks over the compiled pattern;
            # the adjoint transpose stays sparse inside the solver.
            g_vals, c_vals = g_mat.values, c_mat.values
            block = ac_block_size(size, nnz=engine.pattern.nnz)
            for start in range(0, count, block):
                w = omegas[start:start + block]
                data = g_vals[None, :] + 1j * w[:, None] * c_vals[None, :]
                adjoints[start:start + len(w)] = (
                    engine.solve_pattern_batched(
                        data, e_out.astype(complex), transpose=True
                    )
                )
                if input_solutions is not None:
                    input_solutions[start:start + len(w)] = (
                        engine.solve_pattern_batched(data, rhs_in)
                    )
        else:
            block = ac_block_size(size)
            for start in range(0, count, block):
                w = omegas[start:start + block]
                systems = (g_mat[None, :, :]
                           + 1j * w[:, None, None] * c_mat[None, :, :])
                # The adjoint prices every noise source with one transpose
                # solve per frequency; the whole block goes in one call.
                adjoints[start:start + len(w)] = solve_batched(
                    systems.transpose(0, 2, 1), e_out.astype(complex)
                )
                if input_solutions is not None:
                    input_solutions[start:start + len(w)] = solve_batched(
                        systems, rhs_in
                    )
        for source in sources:
            y_p = adjoints[:, source.p] if source.p >= 0 else 0.0
            y_n = adjoints[:, source.n] if source.n >= 0 else 0.0
            transfer_sq = np.abs(y_n - y_p) ** 2
            density = np.array(
                [source.density(f) for f in frequencies]
            )
            value = transfer_sq * density
            total += value
            contributions[source.element] += value
        if input_solutions is not None:
            gain_squared[:] = np.abs(input_solutions[:, out_index]) ** 2
    else:
        for k, frequency in enumerate(frequencies):
            omega = 2.0 * math.pi * frequency
            system = g_mat + 1j * omega * c_mat
            adjoint = engine.solve(system.T, e_out.astype(complex))
            for source in sources:
                y_p = adjoint[source.p] if source.p >= 0 else 0.0
                y_n = adjoint[source.n] if source.n >= 0 else 0.0
                transfer_sq = abs(y_n - y_p) ** 2
                value = transfer_sq * source.density(frequency)
                total[k] += value
                contributions[source.element][k] += value
            if input_element is not None:
                gain_squared[k] = _input_gain_squared(
                    system, input_element, out_index, size, engine
                )

    return NoiseResult(
        circuit=circuit,
        output_node=output_node,
        frequencies=frequencies,
        output_density=total,
        contributions=contributions,
        gain_squared=gain_squared,
    )


def _input_rhs(element, size: int) -> np.ndarray:
    """Unit-excitation RHS of the designated input source."""
    from .elements.sources import CurrentSource, VoltageSource

    rhs = np.zeros(size, dtype=complex)
    if isinstance(element, VoltageSource):
        rhs[element.branch_index[0]] = 1.0
    elif isinstance(element, CurrentSource):
        p, n = element.node_index
        if p >= 0:
            rhs[p] -= 1.0
        if n >= 0:
            rhs[n] += 1.0
    else:
        raise AnalysisError(
            f"input source {element.name!r} is not an independent source"
        )
    return rhs


def _input_gain_squared(system, element, out_index: int, size: int,
                        engine=None) -> float:
    rhs = _input_rhs(element, size)
    if engine is not None:
        solution = engine.solve(system, rhs)
    else:
        solution = np.linalg.solve(system, rhs)
    return abs(solution[out_index]) ** 2

"""Cost model choosing dense vs sparse LU at compile time.

Mirrors :mod:`repro.sweep.costmodel`: closed-form predictions seeded
from measured constants, then EWMA self-calibration from observed
factorization timings so the choice tracks the machine it runs on.

Measured on the reference container (ring-oscillator Jacobians, which
have the banded-plus-coupling structure typical of MNA systems):

========  =====  =====  ==========  ===========
stages      n     nnz   splu (ms)   getrf (ms)
========  =====  =====  ==========  ===========
25          427   1729        1.39         5.23
101        1719   6973       11.03       181.10
========  =====  =====  ==========  ===========

Dense factorization scales as ``n^3`` plus an ``n^2`` assembly/copy
term per Newton iteration; sparse factorization on circuit-like
patterns scales roughly as ``nnz * log2(n)`` (fill-in stays modest:
9-21x on the rings above, versus ~100x for *random* patterns of the
same density — which is why the constants here must come from real
circuit matrices, and why :meth:`SolverCostModel.observe` keeps
re-calibrating from live factorizations).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

__all__ = ["SolverCostModel", "DEFAULT_SOLVER_COST_MODEL"]


@dataclass
class SolverCostModel:
    """Predicts per-iteration solve cost for the two backends.

    ``choose`` is deliberately conservative: below ``min_size`` dense
    always wins (factorization is microseconds and BLAS constants
    dominate), and sparse must be predicted ``min_speedup`` times
    faster before we switch, so noisy calibration can't flap the
    decision for circuits near the crossover.
    """

    #: Dense LU factorization, seconds per n^3 (LAPACK dgetrf).
    dense_factor_ns3: float = 0.05e-9
    #: Dense per-iteration assembly + matvec traffic, seconds per n^2.
    dense_assemble_ns2: float = 2.0e-9
    #: Sparse LU factorization, seconds per nnz*log2(n) (SuperLU on
    #: circuit-structured patterns; includes symbolic + numeric).
    sparse_factor_ns: float = 130.0e-9
    #: Sparse per-iteration scatter + matvec, seconds per nnz.
    sparse_assemble_ns: float = 30.0e-9
    #: Observed LU fill-in ratio (factor nnz over matrix nnz), EWMA of
    #: live factorizations; directly reflects the fill-reducing column
    #: ordering in effect (``.OPTIONS PERMC=``).
    fill_ratio: float = 12.0
    #: The fill baked into the measured ``sparse_factor_ns`` constant
    #: (the ring Jacobians above under SuperLU's default ordering);
    #: :meth:`sparse_cost` scales by ``fill_ratio / reference_fill`` so
    #: a better (or worse) ordering shifts the crossover accordingly.
    reference_fill: float = 12.0
    #: Below this many unknowns, always dense.
    min_size: int = 192
    #: Sparse must beat dense by this factor to be chosen.
    min_speedup: float = 1.2
    #: EWMA weight for observed-timing calibration.
    calibration_weight: float = 0.3
    #: Observations folded in per backend (introspection / tests).
    observations: dict = field(default_factory=lambda: {"dense": 0,
                                                        "sparse": 0})
    #: Guards the EWMA coefficients: :data:`DEFAULT_SOLVER_COST_MODEL`
    #: is shared by every compiled circuit, and concurrent analyses
    #: (thread sweeps, service jobs) observe into it simultaneously.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def dense_cost(self, size: int) -> float:
        """Predicted seconds for one dense factorize + assemble."""
        return (self.dense_factor_ns3 * size ** 3
                + self.dense_assemble_ns2 * size ** 2)

    def sparse_cost(self, size: int, nnz: int) -> float:
        """Predicted seconds for one sparse factorize + assemble.

        The factor term scales with the observed fill-in relative to
        the fill the calibration constant was measured at, so a
        fill-reducing ordering (lower :attr:`fill_ratio`) makes sparse
        win earlier and a fill-heavy one pushes the crossover out.
        """
        work = nnz * math.log2(max(size, 2))
        fill_scale = self.fill_ratio / max(self.reference_fill, 1e-12)
        return (self.sparse_factor_ns * work * fill_scale
                + self.sparse_assemble_ns * nnz)

    def choose(self, size: int, nnz: int | None = None) -> str:
        """``"dense"`` or ``"sparse"`` for a system of this shape.

        With ``nnz`` unknown there is nothing for the model to reason
        about; fall back to the legacy static size threshold so
        callers without pattern information keep their behavior.
        """
        if nnz is None:
            from .engine import SPARSE_THRESHOLD

            return "sparse" if size >= SPARSE_THRESHOLD else "dense"
        if size < self.min_size:
            return "dense"
        dense = self.dense_cost(size)
        sparse = self.sparse_cost(size, nnz)
        return "sparse" if dense > self.min_speedup * sparse else "dense"

    def observe(self, backend: str, size: int, nnz: int | None,
                seconds: float, fill: float | None = None) -> None:
        """Fold one measured factorization into the calibration.

        The observed time re-estimates the backend's *factor*
        coefficient only (assembly terms are too small to separate
        from timer noise); EWMA smoothing keeps one outlier from
        swinging the crossover.  ``fill`` (factor nnz over matrix nnz,
        reported by :class:`~repro.spice.engine.SparseLUSolver`) tracks
        the live fill-in so :meth:`sparse_cost` reflects the column
        ordering actually in effect.
        """
        if seconds <= 0.0 or size <= 0:
            return
        with self._lock:
            w = self.calibration_weight
            if backend == "dense":
                estimate = seconds / float(size) ** 3
                self.dense_factor_ns3 += w * (estimate
                                              - self.dense_factor_ns3)
                self.observations["dense"] += 1
            elif backend == "sparse" and nnz:
                work = nnz * math.log2(max(size, 2))
                estimate = seconds / work
                self.sparse_factor_ns += w * (estimate
                                              - self.sparse_factor_ns)
                if fill is not None and fill > 0.0:
                    self.fill_ratio += w * (fill - self.fill_ratio)
                self.observations["sparse"] += 1

    def crossover(self, density_per_row: float = 4.0,
                  sizes=(64, 96, 128, 192, 256, 384, 512, 768, 1024)) -> int:
        """Smallest probed size where sparse wins at the given density.

        Purely informational (docs / profile output); returns the last
        probed size + 1 if dense wins everywhere.
        """
        for size in sizes:
            nnz = int(density_per_row * size)
            if self.choose(size, nnz) == "sparse":
                return size
        return sizes[-1] + 1


#: Process-wide model shared by every compiled circuit, so calibration
#: from one analysis benefits the next (mirrors the sweep dispatch
#: model's module-level singleton).
DEFAULT_SOLVER_COST_MODEL = SolverCostModel()

"""Serialize a Circuit back to SPICE deck text.

The inverse of :mod:`repro.spice.parser` — lets programmatically built
circuits (ring oscillators, Gilbert mixers, generated test benches) be
archived in the cell database, diffed, or handed to another simulator.
Round-tripping ``parse_deck(circuit_to_deck(c))`` reproduces the same
topology and element values (tested by property tests).
"""

from __future__ import annotations

from ..devices.parameters import GummelPoonParameters
from ..errors import NetlistError
from .netlist import Circuit
from .elements import (
    BJT,
    CCCS,
    CCVS,
    Capacitor,
    CurrentSource,
    DC,
    Diode,
    DiodeModel,
    Inductor,
    PWL,
    Pulse,
    Resistor,
    Sine,
    VCCS,
    VCVS,
    VoltageSource,
)


def _format(value: float) -> str:
    """Plain repr-style number (always re-parseable, never ambiguous)."""
    return f"{value:.12g}"


def _waveform_text(waveform) -> str:
    if isinstance(waveform, DC):
        return f"DC {_format(waveform.level)}"
    if isinstance(waveform, Sine):
        return (f"SIN({_format(waveform.offset)} "
                f"{_format(waveform.amplitude)} "
                f"{_format(waveform.frequency)} {_format(waveform.delay)} "
                f"{_format(waveform.damping)} "
                f"{_format(waveform.phase_deg)})")
    if isinstance(waveform, Pulse):
        return (f"PULSE({_format(waveform.v1)} {_format(waveform.v2)} "
                f"{_format(waveform.delay)} {_format(waveform.rise)} "
                f"{_format(waveform.fall)} {_format(waveform.width)} "
                f"{_format(waveform.period)})")
    if isinstance(waveform, PWL):
        pairs = " ".join(
            f"{_format(t)} {_format(v)}" for t, v in waveform.points
        )
        return f"PWL({pairs})"
    raise NetlistError(
        f"cannot serialize waveform {type(waveform).__name__}"
    )


def _source_line(element) -> str:
    parts = [element.name, *element.nodes, _waveform_text(element.waveform)]
    if element.ac_mag:
        parts.append(f"AC {_format(element.ac_mag)}")
        if element.ac_phase_deg:
            parts.append(_format(element.ac_phase_deg))
    return " ".join(parts)


def _diode_model_card(model: DiodeModel) -> str:
    fields = []
    defaults = DiodeModel()
    for name in ("IS", "N", "RS", "CJO", "VJ", "M", "FC", "TT", "TNOM"):
        value = getattr(model, name)
        if value != getattr(defaults, name):
            fields.append(f"{name}={_format(value)}")
    return f".MODEL {model.name} D({' '.join(fields)})"


def _register_model(cards: dict[str, str], name: str, card: str) -> None:
    existing = cards.get(name)
    if existing is not None and existing != card:
        raise NetlistError(
            f"two different models share the name {name!r}; rename one "
            "before serializing"
        )
    cards[name] = card


def circuit_to_deck(circuit: Circuit, title: str | None = None) -> str:
    """Render a circuit as deck text (title, model cards, elements, .END).

    BJT instances are emitted against their *unscaled* model card with
    the instance's area factor, exactly as they were defined.
    """
    lines: list[str] = [title or circuit.title or "untitled"]
    model_cards: dict[str, str] = {}
    element_lines: list[str] = []

    for element in circuit:
        if isinstance(element, Resistor):
            element_lines.append(
                f"{element.name} {element.nodes[0]} {element.nodes[1]} "
                f"{_format(element.resistance)}"
            )
        elif isinstance(element, Capacitor):
            line = (f"{element.name} {element.nodes[0]} {element.nodes[1]} "
                    f"{_format(element.capacitance)}")
            if element.ic is not None:
                line += f" IC={_format(element.ic)}"
            element_lines.append(line)
        elif isinstance(element, Inductor):
            line = (f"{element.name} {element.nodes[0]} {element.nodes[1]} "
                    f"{_format(element.inductance)}")
            if element.ic is not None:
                line += f" IC={_format(element.ic)}"
            element_lines.append(line)
        elif isinstance(element, (VoltageSource, CurrentSource)):
            element_lines.append(_source_line(element))
        elif isinstance(element, VCVS):
            element_lines.append(
                f"{element.name} {' '.join(element.nodes)} "
                f"{_format(element.gain)}"
            )
        elif isinstance(element, VCCS):
            element_lines.append(
                f"{element.name} {' '.join(element.nodes)} "
                f"{_format(element.gm)}"
            )
        elif isinstance(element, (CCCS, CCVS)):
            element_lines.append(
                f"{element.name} {element.nodes[0]} {element.nodes[1]} "
                f"{element.control.name} {_format(element.coefficient)}"
            )
        elif isinstance(element, Diode):
            model = element.model
            _register_model(model_cards, model.name.upper(),
                            _diode_model_card(model))
            line = (f"{element.name} {element.nodes[0]} {element.nodes[1]} "
                    f"{model.name}")
            if element.area != 1.0:
                line += f" {_format(element.area)}"
            element_lines.append(line)
        elif isinstance(element, BJT):
            model = element.model
            _register_model(model_cards, model.name.upper(),
                            model.to_model_card())
            nodes = element.nodes
            if nodes[3] == "0":
                nodes = nodes[:3]
            line = f"{element.name} {' '.join(nodes)} {model.name}"
            if element.area != 1.0:
                line += f" {_format(element.area)}"
            element_lines.append(line)
        else:
            raise NetlistError(
                f"cannot serialize element type "
                f"{type(element).__name__} ({element.name})"
            )

    lines.extend(model_cards.values())
    lines.extend(element_lines)
    lines.append(".END")
    return "\n".join(lines) + "\n"

"""Deck runner: execute the analyses a SPICE deck requests.

Bridges the parser and the analysis engines so that a classic deck with
``.OP`` / ``.DC`` / ``.AC`` / ``.TRAN`` cards runs end to end — the way
the paper's Fig. 10 flow hands a generated deck to SPICE.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import AnalysisError
from .ac import ACResult, frequency_grid, solve_ac
from .analysis import (
    DCSweepResult,
    OperatingPointResult,
    Simulator,
    TransferFunction,
    transfer_function,
)
from .fourier import FourierResult, fourier_analysis
from .lint import lint_circuit
from .noise import NoiseResult, solve_noise
from .parser import Deck, parse_deck
from .transient import TransientResult


@dataclass
class DeckRun:
    """All results produced by one deck execution, in card order."""

    deck: Deck
    results: list = field(default_factory=list)

    @property
    def circuit(self):
        return self.deck.circuit

    def first(self, kind):
        """The first result of a given type (e.g. ACResult)."""
        for result in self.results:
            if isinstance(result, kind):
                return result
        raise AnalysisError(f"deck produced no {kind.__name__}")

    def profile(self) -> str:
        """Per-analysis engine work report (assemblies, solves, wall time).

        Results that carry no :class:`~repro.spice.engine.EngineStats`
        (e.g. Fourier post-processing) are listed without counters.
        """
        kind_names = {
            "OperatingPointResult": ".OP",
            "DCSweepResult": ".DC",
            "ACResult": ".AC",
            "TransientResult": ".TRAN",
            "TransferFunction": ".TF",
            "NoiseResult": ".NOISE",
            "FourierResult": ".FOUR",
        }
        lines = ["engine profile:"]
        total_wall = 0.0
        for result in self.results:
            label = kind_names.get(type(result).__name__,
                                   type(result).__name__)
            stats = getattr(result, "stats", None)
            if stats is None:
                lines.append(f"  {label:7s} (no engine work)")
                continue
            total_wall += stats.wall_seconds
            lines.append(f"  {label:7s} {stats.summary()}")
        lines.append(f"  total engine wall time: {total_wall * 1e3:.2f} ms")
        return "\n".join(lines)

    def summary(self) -> str:
        """A human-readable digest of every result."""
        lines = [f"deck {self.deck.title!r}: "
                 f"{len(self.deck.circuit)} elements, "
                 f"{len(self.results)} analyses"]
        for result in self.results:
            if isinstance(result, OperatingPointResult):
                lines.append("  .OP node voltages:")
                for node, value in sorted(result.node_voltages().items()):
                    lines.append(f"    V({node}) = {value:.6g}")
            elif isinstance(result, DCSweepResult):
                lines.append(
                    f"  .DC sweep: {len(result.sweep_values)} points "
                    f"({result.sweep_values[0]:g} .. "
                    f"{result.sweep_values[-1]:g})"
                )
            elif isinstance(result, ACResult):
                lines.append(
                    f"  .AC sweep: {len(result.frequencies)} points "
                    f"({result.frequencies[0]:g} .. "
                    f"{result.frequencies[-1]:g} Hz)"
                )
            elif isinstance(result, TransientResult):
                lines.append(
                    f"  .TRAN: {len(result.times)} points to "
                    f"{result.times[-1]:g} s "
                    f"({result.rejected_steps} rejected)"
                )
            elif isinstance(result, TransferFunction):
                lines.append(
                    f"  .TF: gain {result.gain:.6g}, "
                    f"Rin {result.input_resistance:.6g}, "
                    f"Rout {result.output_resistance:.6g}"
                )
            elif isinstance(result, NoiseResult):
                mid = len(result.frequencies) // 2
                lines.append(
                    f"  .NOISE at V({result.output_node}): "
                    f"{result.output_rms_density(result.frequencies[mid]):.3e}"
                    f" V/rtHz at {result.frequencies[mid]:g} Hz"
                )
            elif isinstance(result, FourierResult):
                lines.append(
                    f"  .FOUR at {result.fundamental:g} Hz: "
                    f"THD {result.thd() * 100:.3f} %"
                )
        return "\n".join(lines)


def _deck_tolerances(deck: Deck):
    """Build ``(Tolerances | None, gmin)`` from a deck's .OPTIONS card."""
    from .dcop import Tolerances

    options = getattr(deck, "options", None) or {}
    gmin = float(options.get("gmin", 1e-12))
    names = ("reltol", "vntol", "abstol", "itl1")
    if not any(name in options for name in names):
        return None, gmin
    defaults = Tolerances()
    return Tolerances(
        reltol=float(options.get("reltol", defaults.reltol)),
        vntol=float(options.get("vntol", defaults.vntol)),
        abstol=float(options.get("abstol", defaults.abstol)),
        max_iterations=int(options.get("itl1", defaults.max_iterations)),
    ), gmin


def run_deck(deck: Deck | str, engine=None, lint: bool = True) -> DeckRun:
    """Execute every analysis card of a deck (text or parsed).

    ``engine`` selects the evaluation engine for every analysis (see
    :func:`repro.spice.engine.resolve_engine`): ``None`` uses the
    circuit's cached compiled engine (honoring the deck's
    ``.OPTIONS SOLVER=auto|dense|sparse`` card, if any), ``"legacy"``
    the per-element re-stamping reference path, ``"dense"``/``"sparse"``
    /``"auto"`` a compiled engine with that assembly backend.
    Recognized ``.OPTIONS`` settings (RELTOL/VNTOL/ABSTOL/ITL1/GMIN)
    configure the Newton tolerances.

    Unless ``lint=False``, the circuit first passes the connectivity
    lint (:func:`repro.spice.lint.lint_circuit`): structurally broken
    decks — floating nodes, capacitor-only DC-floating nodes,
    ungrounded islands — raise a structured
    :class:`~repro.errors.ConnectivityError` before any Newton
    iteration runs.
    """
    if isinstance(deck, str):
        deck = parse_deck(deck)
    if not deck.analyses:
        raise AnalysisError(
            "deck requests no analyses (.OP/.DC/.AC/.TRAN)"
        )
    if lint:
        lint_circuit(deck.circuit)
    if engine is None:
        engine = (getattr(deck, "options", None) or {}).get("solver")
    tolerances, gmin = _deck_tolerances(deck)
    simulator = Simulator(deck.circuit, tolerances=tolerances, gmin=gmin,
                          engine=engine)
    run = DeckRun(deck)
    for card in deck.analyses:
        if card.kind == "op":
            run.results.append(simulator.operating_point())
        elif card.kind == "dc":
            start, stop, step = (card.args["start"], card.args["stop"],
                                 card.args["step"])
            if step <= 0:
                raise AnalysisError(".DC step must be positive")
            count = int(round((stop - start) / step)) + 1
            values = start + step * np.arange(count)
            run.results.append(
                simulator.dc_sweep(card.args["source"], values)
            )
        elif card.kind == "ac":
            run.results.append(solve_ac(
                deck.circuit,
                frequency_grid(card.args["start"], card.args["stop"],
                               card.args["points"], card.args["sweep"]),
                engine=simulator._engine(),
            ))
        elif card.kind == "tran":
            run.results.append(simulator.transient(
                stop_time=card.args["stop"],
                max_step=card.args["step"],
            ))
        elif card.kind == "tf":
            run.results.append(transfer_function(
                deck.circuit, card.args["source"], card.args["output"],
                engine=simulator._engine(),
            ))
        elif card.kind == "noise":
            run.results.append(solve_noise(
                deck.circuit, card.args["output"],
                frequency_grid(card.args["start"], card.args["stop"],
                               card.args["points"], card.args["sweep"]),
                input_source=card.args["source"],
                engine=simulator._engine(),
            ))
        elif card.kind == "four":
            transients = [r for r in run.results
                          if isinstance(r, TransientResult)]
            if not transients:
                raise AnalysisError(".FOUR needs a preceding .TRAN")
            run.results.append(fourier_analysis(
                transients[-1], card.args["output"],
                card.args["fundamental"],
            ))
        else:  # pragma: no cover - parser only emits the kinds above
            raise AnalysisError(f"unknown analysis kind {card.kind!r}")
    return run


@dataclass(frozen=True)
class DeckSummary:
    """Lightweight, picklable digest of one deck execution.

    :func:`run_decks` returns these instead of full :class:`DeckRun`
    objects so results can cross the process-pool boundary without
    dragging circuits (and their cached engines) through pickle.

    Under a fault-tolerant policy (``on_error="skip"``/``"retry"``),
    a deck whose execution failed yields a summary with ``error`` set
    (and the solver's forensics folded into ``summary``).
    """

    path: str
    title: str
    summary: str
    profile: str
    #: repr of the exception that killed the deck, or None on success.
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_deck_point(params: dict, engine=None, attempt: int = 0) -> DeckSummary:
    """Sweep-engine evaluation function: one deck file, end to end.

    ``attempt`` is the sweep layer's retry hint; deck re-runs are
    stateless so it only matters for accounting.
    """
    path = params["deck"]
    run = run_deck(parse_deck(Path(path).read_text()), engine=engine)
    return DeckSummary(
        path=path,
        title=run.deck.title,
        summary=run.summary(),
        profile=run.profile(),
    )


def _failed_deck_summary(failure) -> DeckSummary:
    """A :class:`DeckSummary` describing one captured deck failure."""
    path = failure.params.get("deck", "?")
    lines = [f"deck {path}: FAILED ({failure.error_type})",
             f"  {failure.error}"]
    if failure.report is not None:
        lines.append(f"  convergence report: {failure.report.summary()}")
    if failure.attempts > 1:
        lines.append(f"  after {failure.attempts} attempts")
    return DeckSummary(
        path=path,
        title="(failed)",
        summary="\n".join(lines),
        profile="",
        error=failure.error,
    )


def run_decks(
    paths,
    engine=None,
    executor=None,
    jobs=None,
    on_error: str = "raise",
    retries: int = 2,
    stats_sink: dict | None = None,
    cache=None,
) -> list[DeckSummary]:
    """Execute several deck files, optionally in parallel.

    Dispatches one deck per chunk through :func:`repro.sweep.run_sweep`,
    so ``jobs=N`` runs up to ``N`` decks in worker processes — the
    ``repro run --jobs N`` CLI path — and ``jobs="auto"`` defers the
    backend choice to the dispatch cost model.  Results come back in
    input order.

    ``on_error`` (``"raise"``/``"skip"``/``"retry"``, see
    :func:`repro.sweep.run_sweep`) keeps one diverging deck from killing
    the batch: failed decks come back as :class:`DeckSummary` entries
    with ``error`` set instead of aborting the run.

    ``stats_sink``, when given a dict, receives the sweep's
    :class:`~repro.sweep.SweepStats` under ``"sweep"`` — the CLI's
    ``--profile`` uses it to report dispatch overhead.  ``cache`` takes
    a :class:`~repro.sweep.ResultCache` so repeated paths (within or
    across calls) reuse their summaries; its ``hit_rate()`` is the
    observable the CLI's ``--profile`` reports.
    """
    from ..sweep import run_sweep

    result = run_sweep(
        functools.partial(_run_deck_point, engine=engine),
        [{"deck": str(path)} for path in paths],
        executor=executor,
        jobs=jobs,
        chunk_size=1,
        cache=cache,
        cache_tag=f"repro.run_decks#{engine or 'default'}",
        on_error=on_error,
        retries=retries,
    )
    if stats_sink is not None:
        stats_sink["sweep"] = result.stats
    summaries = list(result.values)
    for failure in result.failures:
        summaries[failure.index] = _failed_deck_summary(failure)
    return summaries

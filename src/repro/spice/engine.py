"""Compiled-circuit evaluation core.

The legacy evaluation path (:func:`repro.spice.mna.load_circuit`) walks
every element on every Newton iteration and re-stamps all of them into
freshly allocated matrices.  For the circuits this package targets —
dozens of BJTs surrounded by a largely linear bias/load network — most of
that work is identical from one iteration to the next.

:class:`CompiledCircuit` partitions the elements once, at compile time:

* **linear elements** (R, C, L, controlled sources, and the Jacobian part
  of independent sources) are stamped a single time into cached constant
  matrices ``G0``/``C0``; per evaluation their residual contribution is
  the matrix-vector product ``G0 @ x`` (and ``C0 @ x`` for charges),
* **independent sources** reduce to a handful of precomputed
  ``(row, coeff)`` entries whose values are refreshed from the waveform
  every evaluation (so in-place waveform mutation, as done by DC sweeps,
  keeps working),
* **nonlinear elements** are evaluated per iteration into preallocated
  buffers.  Gummel-Poon BJTs — by far the dominant cost in this package's
  benchmarks — are evaluated as a single vectorized group
  (:class:`BJTGroup`): one numpy pass over all devices, scattered into
  the matrices with ``np.add.at`` through index arrays built at compile
  time.  Any other nonlinear element (diodes, BJT subclasses) falls back
  to its scalar :meth:`~repro.spice.netlist.Element.load_dynamic`.

Behind the engine sits a pluggable :class:`LinearSolver`.  The dense LU
backend keeps its last factorization and reuses it when the caller passes
the same ``token`` — which the analyses do for chord iterations on linear
circuits (transient steps at a fixed step size, DC sweeps of linear
networks).  Circuits above :data:`SPARSE_THRESHOLD` unknowns switch to a
``scipy.sparse`` LU backend.

Engine work is counted in :class:`EngineStats`, both per engine and into
the module-level :data:`GLOBAL_STATS` accumulator that the benchmark
harness snapshots.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, fields

import numpy as np

from ..devices.gummel_poon import EXP_LIMIT
from ..errors import AnalysisError
from .elements.bjt import BJT
from .elements.diode import Diode
from .elements.sources import DC as DCWaveform
from .mna import LoadContext, load_circuit
from .netlist import Circuit
from .solvercost import DEFAULT_SOLVER_COST_MODEL
from .sparse import PatternMatrix, SparsityPattern

try:  # scipy is an optional accelerator; numpy alone is sufficient.
    from scipy import linalg as _sla
    from scipy.linalg import lapack as _lapack
except ImportError:  # pragma: no cover - scipy is present in CI
    _sla = None
    _lapack = None

try:
    from scipy import sparse as _sp
    from scipy.sparse import linalg as _spla
except ImportError:  # pragma: no cover - scipy is present in CI
    _sp = None
    _spla = None

#: System size above which :func:`make_solver` picks the sparse backend.
SPARSE_THRESHOLD = 512


# ---------------------------------------------------------------------------
# instrumentation
# ---------------------------------------------------------------------------


@dataclass
class EngineStats:
    """Counters for the work an engine performed.

    Every analysis stores a snapshot-delta of these on its result object;
    the module-level :data:`GLOBAL_STATS` accumulates across all engines
    for whole-process profiling (benchmark harness, ``repro run
    --profile``).
    """

    #: Individual element evaluations (nonlinear devices + source values);
    #: cached linear stamps are free and intentionally not counted.
    element_evals: int = 0
    #: Full system assemblies (one per Newton/chord iteration).
    assemblies: int = 0
    #: LU factorizations performed by the linear solver.
    factorizations: int = 0
    #: Linear-system solves (back-substitutions).
    solves: int = 0
    #: Circuit compilations (matrix partitioning passes).
    compilations: int = 0
    #: Wall-clock seconds (filled in by analysis-level deltas).
    wall_seconds: float = 0.0
    #: Name of the linear-solver backend in use.
    solver: str = ""
    #: Sweep points orchestrated through :mod:`repro.sweep`.
    sweep_points: int = 0
    #: Sweep points served from the content-hash result cache.
    sweep_cache_hits: int = 0
    #: Summed per-point evaluation wall time across sweeps.
    sweep_point_seconds: float = 0.0
    #: Peak sweep worker count (a gauge, not a counter).
    sweep_workers: int = 0
    #: Sweep points that failed under a skip/retry on_error policy.
    sweep_failures: int = 0
    #: Nonlinear device evaluations skipped because their terminal
    #: voltages moved less than the bypass tolerance (cached stamps
    #: were replayed instead).
    bypassed_evals: int = 0
    #: Linear solves served from a previously factorized Jacobian by the
    #: chord (modified Newton) iteration.
    jacobian_reuses: int = 0
    #: Chord-Newton refactorizations forced by degraded convergence.
    refactorizations: int = 0
    #: Assemblies that filled a flat nnz-length sparse data array.
    sparse_assemblies: int = 0
    #: Assemblies that filled a dense ``(n, n)`` matrix buffer.
    dense_assemblies: int = 0
    #: Sparse factorizations that reused the compiled symbolic pattern
    #: (zero-copy CSC over the fixed structure — no re-analysis, no
    #: dense scan, no conversion).
    pattern_reuses: int = 0
    #: Structural non-zeros of the compiled sparsity pattern (gauge).
    pattern_nnz: int = 0
    #: Non-zeros of the most recent sparse LU factorization, L + U
    #: combined (gauge; ``pattern_nnz`` vs this is the fill-in ratio).
    factor_nnz: int = 0
    #: Fill-in ratio of the most recent sparse LU factorization:
    #: ``factor nnz / matrix nnz`` (gauge).  Directly reflects the
    #: column ordering (``permc_spec``) — COLAMD keeps it low where
    #: NATURAL lets L+U fill in — and feeds the solver cost model's
    #: sparse-vs-dense crossover.
    fill_ratio: float = 0.0
    #: Matrix assembly backend chosen at compile time ("dense"/"sparse").
    assembly: str = ""

    _COUNTERS = (
        "element_evals",
        "assemblies",
        "factorizations",
        "solves",
        "compilations",
        "sweep_points",
        "sweep_cache_hits",
        "sweep_failures",
        "bypassed_evals",
        "jacobian_reuses",
        "refactorizations",
        "sparse_assemblies",
        "dense_assemblies",
        "pattern_reuses",
    )

    def copy(self) -> "EngineStats":
        return EngineStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def since(self, snapshot: "EngineStats") -> "EngineStats":
        """Counter deltas relative to an earlier :meth:`copy`."""
        delta = self.copy()
        for name in self._COUNTERS:
            setattr(delta, name, getattr(self, name) - getattr(snapshot, name))
        delta.wall_seconds = self.wall_seconds - snapshot.wall_seconds
        delta.sweep_point_seconds = (
            self.sweep_point_seconds - snapshot.sweep_point_seconds
        )
        return delta

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        text = (
            f"{self.assemblies} assemblies, {self.element_evals} element "
            f"evals, {self.factorizations} factorizations, {self.solves} "
            f"solves [{self.solver or 'n/a'}] in {self.wall_seconds * 1e3:.2f} ms"
        )
        if self.bypassed_evals:
            text += f"; {self.bypassed_evals} bypassed device evals"
        if self.jacobian_reuses or self.refactorizations:
            text += (
                f"; chord: {self.jacobian_reuses} jacobian reuses, "
                f"{self.refactorizations} refactorizations"
            )
        if self.assembly:
            text += f"; assembly: {self.assembly}"
        if self.sparse_assemblies or self.pattern_nnz:
            fill = self.fill_ratio or (
                self.factor_nnz / self.pattern_nnz
                if self.pattern_nnz and self.factor_nnz else 0.0
            )
            text += (
                f"; sparse: {self.pattern_nnz} nnz pattern, "
                f"{self.sparse_assemblies} sparse assemblies, "
                f"{self.pattern_reuses} pattern reuses"
            )
            if fill:
                text += f", fill-in {fill:.1f}x"
        if self.sweep_points:
            text += (
                f"; {self.sweep_points} sweep points "
                f"({self.sweep_cache_hits} cached, "
                f"{self.sweep_workers} worker(s), "
                f"{self.sweep_point_seconds * 1e3:.2f} ms point time)"
            )
            if self.sweep_failures:
                text += f"; {self.sweep_failures} failed sweep point(s)"
        return text


#: Process-wide accumulator; engines bump it alongside their own counters.
GLOBAL_STATS = EngineStats()


class _timed_stats:
    """Context manager adding elapsed wall time to one or more stat sinks."""

    def __init__(self, *sinks: EngineStats):
        self.sinks = sinks

    def __enter__(self):
        self._t0 = _time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = _time.perf_counter() - self._t0
        for sink in self.sinks:
            sink.wall_seconds += elapsed
        return False


# ---------------------------------------------------------------------------
# linear solvers
# ---------------------------------------------------------------------------


class LinearSolver:
    """Pluggable dense/sparse linear-solver interface.

    ``solve(a, b, token=...)`` solves ``a @ x = b``.  A non-``None``
    ``token`` promises that ``a`` is identical to the previous call that
    passed the same token, allowing backends to reuse a factorization
    (chord / Newton-Richardson iteration).  Singular systems raise
    :class:`numpy.linalg.LinAlgError` so callers keep their existing
    convergence-failure handling.
    """

    name = "numpy-dense"
    #: Whether this backend can keep a factorization alive between calls
    #: (required for chord / Newton-Richardson iteration).
    caches_factorization = False

    def __init__(self):
        self._sinks: tuple[EngineStats, ...] = ()

    def bind(self, *sinks: EngineStats) -> None:
        """Attach stat accumulators (engine stats + global stats)."""
        self._sinks = sinks

    def _count(self, attr: str, n: int = 1) -> None:
        for sink in self._sinks:
            setattr(sink, attr, getattr(sink, attr) + n)

    def _gauge(self, attr: str, value) -> None:
        for sink in self._sinks:
            setattr(sink, attr, value)

    def invalidate(self) -> None:
        """Drop any cached factorization."""

    def has_factorization(self, token) -> bool:
        """True when a factorization stored under ``token`` is alive."""
        return False

    def solve_cached(self, b: np.ndarray) -> np.ndarray:
        """Back-substitute against the live factorization.

        Only valid immediately after :meth:`has_factorization` returned
        True; chord-Newton uses this to skip refactorizing an unchanged
        (or deliberately frozen) Jacobian.
        """
        raise AnalysisError(
            f"{self.name} backend holds no cached factorization"
        )

    def solve(self, a: np.ndarray, b: np.ndarray, token=None) -> np.ndarray:
        self._count("factorizations")
        self._count("solves")
        return np.linalg.solve(a, b)

    def solve_batched(self, systems: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
        """Solve a stack of systems ``systems[k] @ x[k] = rhs[k]``.

        ``systems`` has shape ``(batch, n, n)``; ``rhs`` is either one
        shared vector ``(n,)``, a per-system vector stack ``(batch, n)``
        or a multi-RHS stack ``(batch, n, k)``.  The dense default is a
        single broadcast LAPACK call over the whole batch — one C-level
        dispatch instead of a Python loop — which is what makes blocked
        AC/noise sweeps fast.  Counters tally one factorization and one
        solve per system so batched and per-frequency paths report
        comparable work.
        """
        systems = np.asarray(systems)
        count = systems.shape[0]
        self._count("factorizations", count)
        self._count("solves", count)
        rhs = np.asarray(rhs)
        if rhs.ndim == 1:
            rhs = np.broadcast_to(rhs, (count, rhs.shape[0]))
        if rhs.ndim == 2:
            return np.linalg.solve(systems, rhs[:, :, None])[:, :, 0]
        return np.linalg.solve(systems, rhs)

    def solve_batched_exact(self, systems: np.ndarray,
                            rhs: np.ndarray) -> np.ndarray:
        """Per-system :meth:`solve` over a ``(batch, n, n)`` stack.

        The blocked DC path's contract: every lane must be **bit-identical**
        to the scalar Newton path on the same backend.  The broadcast
        :meth:`solve_batched` cannot promise that — numpy's batched
        ``gesv`` and scipy's ``getrf``/``getrs`` (what
        :class:`DenseLUSolver` runs per point) differ in the last ulp —
        so this routine simply loops the backend's own scalar ``solve``.
        A singular lane comes back filled with NaN instead of raising,
        so one pathological operating point cannot abort the block;
        callers already treat a non-finite Newton step as that lane's
        convergence failure.
        """
        systems = np.asarray(systems)
        rhs = np.asarray(rhs)
        out = np.empty_like(rhs, dtype=np.result_type(systems, rhs))
        for k in range(systems.shape[0]):
            try:
                out[k] = self.solve(systems[k], rhs[k])
            except np.linalg.LinAlgError:
                out[k] = np.nan
        return out


class DenseLUSolver(LinearSolver):
    """Dense LU via ``scipy.linalg.lu_factor`` with factorization reuse."""

    name = "dense-lu"
    caches_factorization = True

    def __init__(self):
        super().__init__()
        self._token = None
        self._factor = None

    def invalidate(self) -> None:
        self._token = None
        self._factor = None

    def has_factorization(self, token) -> bool:
        return (
            token is not None
            and self._factor is not None
            and token == self._token
        )

    def solve_cached(self, b: np.ndarray) -> np.ndarray:
        if self._factor is None:
            raise AnalysisError("no cached LU factorization to reuse")
        self._count("solves")
        self._count("jacobian_reuses")
        lu, piv, getrs = self._factor
        x, _info = getrs(lu, piv, b)
        return x

    def solve(self, a: np.ndarray, b: np.ndarray, token=None) -> np.ndarray:
        if (
            token is not None
            and self._factor is not None
            and token == self._token
        ):
            self._count("solves")
            lu, piv, getrs = self._factor
            x, _info = getrs(lu, piv, b)
            return x
        # Raw LAPACK getrf/getrs: identical math to lu_factor/lu_solve
        # minus scipy's per-call python wrapper overhead, which is
        # measurable at this call rate.  ``piv`` stays in LAPACK's
        # 1-based convention and is only ever handed back to getrs.
        if np.iscomplexobj(a):
            getrf, getrs = _lapack.zgetrf, _lapack.zgetrs
        else:
            getrf, getrs = _lapack.dgetrf, _lapack.dgetrs
        size = a.shape[0]
        # Feed the dense/sparse cost model real factorization timings;
        # below 64 unknowns the perf_counter overhead rivals getrf
        # itself and dense always wins anyway, so skip the clock.
        clock = size >= 64
        t0 = _time.perf_counter() if clock else 0.0
        lu, piv, info = getrf(a)
        if clock:
            DEFAULT_SOLVER_COST_MODEL.observe(
                "dense", size, None, _time.perf_counter() - t0
            )
        if info > 0 or not np.all(np.isfinite(lu)):
            self.invalidate()
            raise np.linalg.LinAlgError("singular matrix in LU factorization")
        self._count("factorizations")
        self._count("solves")
        if token is not None:
            self._token, self._factor = token, (lu, piv, getrs)
        # An anonymous (token=None) factorization must not clobber a
        # factorization cached under a live token: batched fallbacks and
        # one-off solves used to call invalidate() here, silently
        # defeating chord reuse for the caller that owned the token.
        x, _info = getrs(lu, piv, b)
        return x


class SparseLUSolver(LinearSolver):
    """Sparse LU via ``scipy.sparse.linalg.splu``.

    Accepts either a dense ndarray (converted per call — the legacy
    large-system fallback) or a :class:`~repro.spice.sparse.PatternMatrix`
    from the sparse assembly path, whose fixed CSC structure wraps into
    ``splu`` with zero copies and zero dense scans.

    ``permc_spec`` selects SuperLU's fill-reducing column ordering:
    ``"COLAMD"`` (approximate minimum degree), ``"NATURAL"`` (no
    reordering), or the ``MMD_*`` variants; ``None`` keeps SuperLU's
    default.  The resulting fill-in ratio (factor nnz over matrix nnz)
    is recorded on :class:`EngineStats` and observed by the solver cost
    model, so the sparse-vs-dense crossover tracks the ordering
    actually in effect.
    """

    name = "sparse-lu"
    caches_factorization = True

    #: Column orderings scipy's splu accepts.
    PERMC_SPECS = ("COLAMD", "NATURAL", "MMD_ATA", "MMD_AT_PLUS_A")

    def __init__(self, permc_spec: str | None = None):
        super().__init__()
        if permc_spec is not None:
            permc_spec = str(permc_spec).upper()
            if permc_spec not in self.PERMC_SPECS:
                raise AnalysisError(
                    f"unknown permc_spec {permc_spec!r}; expected one of "
                    f"{self.PERMC_SPECS}"
                )
        self.permc_spec = permc_spec
        self._token = None
        self._factor = None
        #: The SparsityPattern of the last factorization; an identical
        #: pattern on the next factorization means the symbolic
        #: structure was reused (counted as ``pattern_reuses``).
        self._last_pattern = None

    def _splu(self, matrix):
        """``splu`` with the configured column ordering; singularity
        surfaces as ``LinAlgError`` like the dense backends."""
        try:
            if self.permc_spec is not None:
                return _spla.splu(matrix, permc_spec=self.permc_spec)
            return _spla.splu(matrix)
        except RuntimeError as exc:  # "Factor is exactly singular"
            self.invalidate()
            raise np.linalg.LinAlgError(str(exc)) from exc

    def invalidate(self) -> None:
        self._token = None
        self._factor = None

    def _factorize(self, a):
        """splu of a dense array or PatternMatrix; counts + calibrates."""
        if isinstance(a, PatternMatrix):
            matrix = a.to_csc()
            if a.pattern is self._last_pattern:
                self._count("pattern_reuses")
            self._last_pattern = a.pattern
        else:
            matrix = _sp.csc_matrix(np.asarray(a))
            self._last_pattern = None
        t0 = _time.perf_counter()
        factor = self._splu(matrix)
        fill = factor.nnz / max(matrix.nnz, 1)
        DEFAULT_SOLVER_COST_MODEL.observe(
            "sparse", matrix.shape[0], matrix.nnz,
            _time.perf_counter() - t0, fill=fill,
        )
        self._count("factorizations")
        self._gauge("factor_nnz", int(factor.nnz))
        self._gauge("fill_ratio", float(fill))
        return factor

    def has_factorization(self, token) -> bool:
        return (
            token is not None
            and self._factor is not None
            and token == self._token
        )

    def solve_cached(self, b: np.ndarray) -> np.ndarray:
        if self._factor is None:
            raise AnalysisError("no cached LU factorization to reuse")
        self._count("solves")
        self._count("jacobian_reuses")
        return self._factor.solve(b)

    def solve(self, a: np.ndarray, b: np.ndarray, token=None) -> np.ndarray:
        if (
            token is not None
            and self._factor is not None
            and token == self._token
        ):
            self._count("solves")
            return self._factor.solve(b)
        factor = self._factorize(a)
        self._count("solves")
        if token is not None:
            self._token, self._factor = token, factor
        # token=None: leave any token-cached factorization alone (see
        # DenseLUSolver.solve) — per-frequency AC fallbacks and batched
        # loops used to wipe the chord factor here on every call.
        return factor.solve(b)

    def solve_batched(self, systems: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
        """Per-system sparse LU: splu has no batched form, so this loops,
        but still amortizes the Python-level sweep bookkeeping."""
        systems = np.asarray(systems)
        rhs = np.asarray(rhs)
        shared = rhs.ndim == 1
        out = np.empty(
            systems.shape[:2] + rhs.shape[2:],
            dtype=np.result_type(systems.dtype, rhs.dtype),
        )
        for k in range(systems.shape[0]):
            out[k] = self.solve(systems[k], rhs if shared else rhs[k])
        return out

    def solve_pattern_batched(self, pattern: SparsityPattern,
                              data: np.ndarray, rhs: np.ndarray,
                              transpose: bool = False) -> np.ndarray:
        """Solve a stack of systems sharing one sparsity pattern.

        ``data`` has shape ``(batch, nnz)`` (one value vector per
        system over the compiled pattern — e.g. ``G + j*omega_k*C`` per
        frequency); ``rhs`` is ``(n,)`` shared, ``(batch, n)`` or
        ``(batch, n, k)``.  ``transpose=True`` solves ``A.T x = b``
        (noise adjoint systems) while keeping the transpose sparse.
        Every lane reuses the symbolic pattern — no dense staging
        array is ever built.
        """
        data = np.asarray(data)
        rhs = np.asarray(rhs)
        batch = data.shape[0]
        shared = rhs.ndim == 1
        out = np.empty(
            (batch, pattern.size) + rhs.shape[2:],
            dtype=np.result_type(data.dtype, rhs.dtype),
        )
        self._count("factorizations", batch)
        self._count("solves", batch)
        self._count("pattern_reuses", batch)
        self._last_pattern = pattern
        for k in range(batch):
            matrix = pattern.csc(data[k])
            if transpose:
                matrix = matrix.T.tocsc()
            factor = self._splu(matrix)
            out[k] = factor.solve(rhs if shared else rhs[k])
        if batch:
            self._gauge("factor_nnz", int(factor.nnz))
            self._gauge("fill_ratio",
                        float(factor.nnz) / max(matrix.nnz, 1))
        return out


def make_solver(size: int, prefer: str | None = None,
                nnz: int | None = None,
                permc_spec: str | None = None) -> LinearSolver:
    """Pick a solver backend for a system of ``size`` unknowns.

    ``prefer`` forces a backend: ``"dense"``, ``"sparse"`` or ``"numpy"``;
    ``"auto"`` asks the self-calibrating cost model, which weighs the
    pattern's ``nnz`` (when known) against dense LAPACK throughput
    instead of the static size threshold.  ``permc_spec`` configures the
    sparse backend's fill-reducing column ordering (e.g. ``"COLAMD"`` or
    ``"NATURAL"``; see :class:`SparseLUSolver`) and is ignored by the
    dense backends.
    """
    if prefer == "numpy":
        return LinearSolver()
    if prefer == "sparse":
        if _spla is None:
            raise AnalysisError("sparse solver requested but scipy is absent")
        return SparseLUSolver(permc_spec=permc_spec)
    if prefer == "dense":
        if _sla is None:
            raise AnalysisError("dense LU solver requested but scipy is absent")
        return DenseLUSolver()
    if prefer == "auto":
        if _spla is not None and (
            DEFAULT_SOLVER_COST_MODEL.choose(size, nnz) == "sparse"
        ):
            return SparseLUSolver(permc_spec=permc_spec)
        return DenseLUSolver() if _sla is not None else LinearSolver()
    if prefer is not None:
        raise AnalysisError(f"unknown solver backend {prefer!r}")
    if size >= SPARSE_THRESHOLD and _spla is not None:
        return SparseLUSolver(permc_spec=permc_spec)
    if _sla is not None:
        return DenseLUSolver()
    return LinearSolver()


# ---------------------------------------------------------------------------
# vectorized Gummel-Poon group
# ---------------------------------------------------------------------------


def _limited_exp_vec(arg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.devices.gummel_poon.limited_exp`."""
    anchor = math.exp(EXP_LIMIT)
    over = arg > EXP_LIMIT
    base = np.exp(np.minimum(arg, EXP_LIMIT))
    value = np.where(over, anchor * (1.0 + (arg - EXP_LIMIT)), base)
    deriv = np.where(over, anchor, base)
    return value, deriv


def _diode_current_vec(
    i_sat: np.ndarray, v: np.ndarray, n_vt: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ideal-diode current; ``i_sat == 0`` lanes yield (0, 0)."""
    exp_value, exp_deriv = _limited_exp_vec(v / n_vt)
    return i_sat * (exp_value - 1.0), i_sat * exp_deriv / n_vt


def _pnjlim_vec(
    v_new: np.ndarray, v_old: np.ndarray, vt: np.ndarray, v_crit: np.ndarray
) -> np.ndarray:
    """Vectorized SPICE pnjlim junction-voltage limiting."""
    limit = (v_new > v_crit) & (np.abs(v_new - v_old) > 2.0 * vt)
    arg = 1.0 + (v_new - v_old) / vt
    arg_pos = arg > 0.0
    branch_pos = np.where(
        arg_pos, v_old + vt * np.log(np.where(arg_pos, arg, 1.0)), v_crit
    )
    ratio = v_new / vt
    ratio_pos = ratio > 0.0
    branch_neg = vt * np.log(np.where(ratio_pos, ratio, 1.0))
    limited = np.where(v_old > 0.0, branch_pos, branch_neg)
    return np.where(limit, limited, v_new)


class _DepletionJunction:
    """Precomputed constants for a batch of depletion junctions.

    All four BJT junction families (B-E, internal B-C, external B-C,
    substrate) are stacked into one array so a single vectorized
    :meth:`charge_cap` covers the whole group — per-op numpy overhead on
    short arrays is what dominates small-circuit evaluation, so fewer,
    longer operations win.
    """

    def __init__(self, cj, vj, m, fc):
        cj = np.asarray(cj, dtype=float)
        vj = np.asarray(vj, dtype=float)
        m = np.asarray(m, dtype=float)
        fc = np.asarray(fc, dtype=float)
        self.cj = cj
        self.threshold = fc * vj
        self.one_m = 1.0 - m
        f1 = vj / self.one_m * (1.0 - (1.0 - fc) ** self.one_m)
        f2 = (1.0 - fc) ** (1.0 + m)
        self.f3 = 1.0 - fc * (1.0 + m)
        self.inv_vj = 1.0 / vj
        self.coef_b = cj * vj / self.one_m
        self.cj_f1 = cj * f1
        self.cj_over_f2 = cj / f2
        self.m_over_2vj = m / (2.0 * vj)
        self.m_over_vj = m / vj
        self.thr2 = self.threshold * self.threshold

    def charge_cap(
        self, v: np.ndarray, lanes: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized SPICE depletion Q(v), C(v); ``cj == 0`` lanes are 0.

        ``lanes`` restricts the evaluation to a subset of the stacked
        junction batch (device-bypass partial evaluation); ``v`` must
        then already be gathered to those lanes.
        """
        if lanes is None:
            threshold, one_m, cj = self.threshold, self.one_m, self.cj
            inv_vj, coef_b = self.inv_vj, self.coef_b
            cj_f1, cj_over_f2, f3 = self.cj_f1, self.cj_over_f2, self.f3
            m_over_2vj, m_over_vj = self.m_over_2vj, self.m_over_vj
            thr2 = self.thr2
        else:
            threshold, one_m, cj = (
                self.threshold[lanes], self.one_m[lanes], self.cj[lanes]
            )
            inv_vj, coef_b = self.inv_vj[lanes], self.coef_b[lanes]
            cj_f1, cj_over_f2, f3 = (
                self.cj_f1[lanes], self.cj_over_f2[lanes], self.f3[lanes]
            )
            m_over_2vj, m_over_vj = (
                self.m_over_2vj[lanes], self.m_over_vj[lanes]
            )
            thr2 = self.thr2[lanes]
        below = v < threshold
        arg = np.where(below, 1.0 - v * inv_vj, 1.0)
        pow_one_m = arg ** one_m
        charge_b = coef_b * (1.0 - pow_one_m)
        cap_b = cj * pow_one_m / arg  # arg^(1-m)/arg == arg^-m
        dv = v - threshold
        charge_a = cj_f1 + cj_over_f2 * (
            f3 * dv + m_over_2vj * (v * v - thr2)
        )
        cap_a = cj_over_f2 * (f3 + m_over_vj * v)
        return (
            np.where(below, charge_b, charge_a),
            np.where(below, cap_b, cap_a),
        )


class BJTGroup:
    """All plain :class:`~repro.spice.elements.bjt.BJT` instances of a
    circuit, evaluated as one vectorized numpy pass.

    Compile time gathers per-device parameter arrays and builds the
    scatter-index arrays; :meth:`load` then reproduces the scalar
    ``BJT.load_dynamic`` stamps for every device at once.  Ground (-1)
    terminal indices are mapped to a dummy slot ``size`` — the engine's
    buffers carry one extra row/column that is never read.
    """

    def __init__(self, devices, size, i_full, q_full, xg):
        self.devices = list(devices)
        self.names = [d.name for d in self.devices]
        n = len(self.devices)
        self.n = n
        self._i_full = i_full
        self._q_full = q_full
        # Jacobian scatter targets are attached afterwards by
        # bind_dense/bind_sparse — the sparsity pattern needs this
        # group's index arrays before the data buffers can exist.
        self._g_flat = None
        self._c_flat = None
        self._g_idx = None
        self._c_idx = None
        self._xg = xg
        self.size = size

        def gather(values, dtype=float):
            return np.asarray(list(values), dtype=dtype)

        def nodes(index):
            a = gather((d.node_index[index] for d in self.devices), np.intp)
            a[a < 0] = size
            return a

        b_ext = nodes(1)
        s_ext = nodes(3)
        internal = [d._internal_indices() for d in self.devices]
        ci = gather((t[0] for t in internal), np.intp)
        bi = gather((t[1] for t in internal), np.intp)
        ei = gather((t[2] for t in internal), np.intp)
        ci[ci < 0] = size
        bi[bi < 0] = size
        ei[ei < 0] = size
        self.b_ext, self.s_ext = b_ext, s_ext
        self.ci, self.bi, self.ei = ci, bi, ei

        def param(attr):
            return gather(getattr(d.params, attr) for d in self.devices)

        self.sign = param("sign")
        vt = gather(d._vt for d in self.devices)
        self.nf_vt = param("NF") * vt
        self.nr_vt = param("NR") * vt
        self.ne_vt = param("NE") * vt
        self.nc_vt = param("NC") * vt
        self.vcrit_be = gather(d._vcrit_be for d in self.devices)
        self.vcrit_bc = gather(d._vcrit_bc for d in self.devices)
        self.IS = param("IS")
        self.ISE = param("ISE")
        self.ISC = param("ISC")
        self.BF = param("BF")
        self.BR = param("BR")
        self.VAF = param("VAF")
        self.VAR = param("VAR")
        self.IKF = param("IKF")
        self.IKR = param("IKR")
        self.TF = param("TF")
        self.XTF = param("XTF")
        self.ITF = param("ITF")
        self.TR = param("TR")
        self.RB = param("RB")
        self.rbm = gather(d.params.rbm_effective for d in self.devices)
        self.has_rb = gather((d._has_rb for d in self.devices), bool)
        vtf = param("VTF")
        #: 1/(1.44*VTF); infinite VTF collapses to 0 so exp(0)=1, d=0 — the
        #: same result as the scalar isfinite branch.
        with np.errstate(divide="ignore"):
            self.inv_vtf144 = np.where(
                np.isfinite(vtf), 1.0 / (1.44 * vtf), 0.0
            )
        self.itf_pos = self.ITF > 0.0

        cat = np.concatenate
        # The four junction diodes (BE ideal, BE leakage, BC ideal, BC
        # leakage) are evaluated as one stacked exp over 4n lanes.
        self._diode_isat = cat([self.IS, self.ISE, self.IS, self.ISC])
        self._diode_nvt = cat([self.nf_vt, self.ne_vt, self.nr_vt, self.nc_vt])
        # pnjlim for (vbe, vbc) runs as one stacked call over 2n lanes.
        self._lim_vt = cat([self.nf_vt, self.nr_vt])
        self._lim_vcrit = cat([self.vcrit_be, self.vcrit_bc])

        fc = param("FC")
        xcjc = param("XCJC")
        cjc = param("CJC")
        vjc, mjc = param("VJC"), param("MJC")
        # One stacked depletion batch: [B-E, internal B-C, external B-C,
        # substrate] — zero-CJ lanes (XCJC == 1, CJS == 0) contribute 0.
        self.junctions = _DepletionJunction(
            cat([param("CJE"), cjc * xcjc, cjc * (1.0 - xcjc), param("CJS")]),
            cat([param("VJE"), vjc, vjc, param("VJS")]),
            cat([param("MJE"), mjc, mjc, param("MJS")]),
            cat([fc, fc, fc, fc]),
        )

        # -- scatter index arrays (C-order ravel of the (slots, n) buffers) --
        cat = np.concatenate
        self._i_rows = cat([b_ext, bi, ci, bi, ei])
        self._q_rows = cat([bi, ei, bi, ci, b_ext, ci, s_ext, ci])

        g_pairs = [
            (b_ext, b_ext), (b_ext, bi), (bi, b_ext), (bi, bi),  # rb
            (ci, bi), (ci, ei), (ci, ci),  # dIc rows
            (bi, bi), (bi, ei), (bi, ci),  # dIb rows
            (ei, bi), (ei, ei), (ei, ci),  # dIe rows
        ]
        c_pairs = [
            (bi, bi), (bi, ei), (ei, bi), (ei, ei),  # cpi (dqbe_dvbe)
            (bi, bi), (bi, ci), (ei, bi), (ei, ci),  # dqbe_dvbc cross term
            (bi, bi), (bi, ci), (ci, bi), (ci, ci),  # cmu (dqbc_dvbc)
            (b_ext, b_ext), (b_ext, ci), (ci, b_ext), (ci, ci),  # cbx
            (s_ext, s_ext), (s_ext, ci), (ci, s_ext), (ci, ci),  # cjs
        ]
        # Row/column node indices of the Jacobian entries, kept unflattened
        # for the bypass extrapolation terms G_cached @ dx / C_cached @ dx
        # and for seeding the compiled sparsity pattern.
        self._g_rows_arr = cat([r for r, _ in g_pairs])
        self._g_cols_arr = cat([c for _, c in g_pairs])
        self._c_rows_arr = cat([r for r, _ in c_pairs])
        self._c_cols_arr = cat([c for _, c in c_pairs])
        #: Node voltages each Jacobian entry's column had at the owning
        #: device's last evaluation — the linearization point bypassed
        #: devices extrapolate from.  Freshly-evaluated lanes have their
        #: anchors synced to the current solution, so their extrapolation
        #: term is exactly zero.
        self._g_anchor = np.zeros(13 * n)
        self._c_anchor = np.zeros(20 * n)
        self._g_lane = np.arange(13)[:, None] * n
        self._c_lane = np.arange(20)[:, None] * n

        self._i_vals = np.empty((5, n))
        self._q_vals = np.empty((8, n))
        self._g_vals = np.empty((13, n))
        self._c_vals = np.empty((20, n))

        # -- device-bypass cache ------------------------------------------------
        # Last-evaluated control voltages per device (vbe, vbc, vbx, vsc
        # and the base-spreading drop); a device whose controls all moved
        # less than the bypass tolerance replays its cached stamp values
        # (the columns of the ``*_vals`` buffers above) untouched.
        self._bypass_v = np.full((5, n), np.inf)
        self._v_now = np.empty((5, n))
        self._v_diff = np.empty((5, n))
        self._bypass_gmin: float | None = None
        #: The limits dict the cache was built against — compared by
        #: identity, so a fresh per-call dict never falsely bypasses.
        self._bypass_limits: dict | None = None

    # -- scatter-target binding -------------------------------------------------

    def bind_dense(self, g_full: np.ndarray, c_full: np.ndarray) -> None:
        """Scatter Jacobian stamps into raveled dense ``(n1, n1)`` buffers."""
        n1 = self.size + 1
        self._g_flat = g_full.reshape(-1)
        self._c_flat = c_full.reshape(-1)
        self._g_idx = self._g_rows_arr * n1 + self._g_cols_arr
        self._c_idx = self._c_rows_arr * n1 + self._c_cols_arr

    def bind_sparse(self, pattern: SparsityPattern, g_data: np.ndarray,
                    c_data: np.ndarray) -> None:
        """Scatter Jacobian stamps directly into pattern data arrays.

        ``g_data``/``c_data`` are ``nnz + 1``-length value arrays over
        the same pattern (the trailing slot absorbs ground lanes), so
        one position lookup per slot family serves both targets — and
        the fused ``G + alpha*C`` path can scatter C values through
        ``_c_idx`` into ``g_data`` exactly as it does densely.
        """
        self._g_flat = g_data
        self._c_flat = c_data
        self._g_idx = pattern.positions(self._g_rows_arr, self._g_cols_arr)
        self._c_idx = pattern.positions(self._c_rows_arr, self._c_cols_arr)

    # -- evaluation -----------------------------------------------------------

    def _evaluate(self, vbe, vbc, gmin, qje, cje, qjc, cjc, idx=None):
        """Vectorized port of :func:`repro.devices.gummel_poon.evaluate`.

        The depletion contributions ``qje``/``cje`` (B-E) and ``qjc``/
        ``cjc`` (internal B-C) are computed by the caller as part of the
        stacked four-junction batch.  ``idx`` restricts the evaluation to
        a subset of devices (bypass partial evaluation); the voltage and
        depletion inputs must already be gathered to those lanes.
        """
        n = self.n if idx is None else len(idx)
        if idx is None:
            VAF, VAR, IKF, IKR = self.VAF, self.VAR, self.IKF, self.IKR
            BF, BR, ITF, itf_pos = self.BF, self.BR, self.ITF, self.itf_pos
            inv_vtf144, TF, XTF, TR = (
                self.inv_vtf144, self.TF, self.XTF, self.TR
            )
            rbm, RB = self.rbm, self.RB
            diode_isat, diode_nvt = self._diode_isat, self._diode_nvt
        else:
            VAF, VAR, IKF, IKR = (
                self.VAF[idx], self.VAR[idx], self.IKF[idx], self.IKR[idx]
            )
            BF, BR, ITF, itf_pos = (
                self.BF[idx], self.BR[idx], self.ITF[idx], self.itf_pos[idx]
            )
            inv_vtf144, TF, XTF, TR = (
                self.inv_vtf144[idx], self.TF[idx], self.XTF[idx],
                self.TR[idx],
            )
            rbm, RB = self.rbm[idx], self.RB[idx]
            idx4 = np.concatenate(
                [idx, idx + self.n, idx + 2 * self.n, idx + 3 * self.n]
            )
            diode_isat = self._diode_isat[idx4]
            diode_nvt = self._diode_nvt[idx4]
        # Last-axis slicing so a lane-stacked (L, m) call flows through
        # the identical elementwise arithmetic as the scalar (m,) call.
        v4 = np.concatenate([vbe, vbe, vbc, vbc], axis=-1)
        i4, g4 = _diode_current_vec(diode_isat, v4, diode_nvt)
        ibe1 = i4[..., :n] + gmin * vbe
        gbe1 = g4[..., :n] + gmin
        ibe2, gbe2 = i4[..., n : 2 * n], g4[..., n : 2 * n]
        ibc1 = i4[..., 2 * n : 3 * n] + gmin * vbc
        gbc1 = g4[..., 2 * n : 3 * n] + gmin
        ibc2, gbc2 = i4[..., 3 * n :], g4[..., 3 * n :]

        inv_early = 1.0 - vbc / VAF - vbe / VAR
        np.maximum(inv_early, 1e-4, out=inv_early)
        q1 = 1.0 / inv_early
        q2 = ibe1 / IKF + ibc1 / IKR
        sqarg = np.sqrt(1.0 + 4.0 * np.maximum(q2, -0.2499))
        qb = q1 * (1.0 + sqarg) / 2.0

        dq1_dvbe = q1 * q1 / VAR
        dq1_dvbc = q1 * q1 / VAF
        dq2_dvbe = gbe1 / IKF
        dq2_dvbc = gbc1 / IKR
        dqb_dvbe = dq1_dvbe * (1.0 + sqarg) / 2.0 + q1 * dq2_dvbe / sqarg
        dqb_dvbc = dq1_dvbc * (1.0 + sqarg) / 2.0 + q1 * dq2_dvbc / sqarg

        it = (ibe1 - ibc1) / qb
        dit_dvbe = (gbe1 - it * dqb_dvbe) / qb
        dit_dvbc = (-gbc1 - it * dqb_dvbc) / qb

        ic = it - ibc1 / BR - ibc2
        ib = ibe1 / BF + ibe2 + ibc1 / BR + ibc2
        dic_dvbe = dit_dvbe
        dic_dvbc = dit_dvbc - gbc1 / BR - gbc2
        dib_dvbe = gbe1 / BF + gbe2
        dib_dvbc = gbc1 / BR + gbc2

        # Bias-dependent forward transit time: TF == 0 or XTF == 0 lanes
        # reduce to tf_eff = TF, dtf = 0 without needing an explicit mask.
        ibe_pos = np.maximum(ibe1, 0.0)
        denom = ibe_pos + ITF
        denom_safe = np.where(denom > 0.0, denom, 1.0)
        w = np.where(itf_pos, ibe_pos / denom_safe, 1.0)
        dw_dvbe = np.where(
            itf_pos & (ibe1 > 0.0),
            gbe1 * ITF / (denom_safe * denom_safe),
            0.0,
        )
        exp_vbc = np.exp(np.minimum(vbc * inv_vtf144, EXP_LIMIT))
        dexp_dvbc = exp_vbc * inv_vtf144
        tf_eff = TF * (1.0 + XTF * w * w * exp_vbc)
        dtf_dvbe = TF * XTF * 2.0 * w * dw_dvbe * exp_vbc
        dtf_dvbc = TF * XTF * w * w * dexp_dvbc

        qde = tf_eff * ibe1 / qb
        dqde_dvbe = (dtf_dvbe * ibe1 + tf_eff * gbe1 - qde * dqb_dvbe) / qb
        dqde_dvbc = (dtf_dvbc * ibe1 - qde * dqb_dvbc) / qb

        qdc = TR * ibc1

        rbb = rbm + (RB - rbm) / qb

        return {
            "ic": ic,
            "ib": ib,
            "dic_dvbe": dic_dvbe,
            "dic_dvbc": dic_dvbc,
            "dib_dvbe": dib_dvbe,
            "dib_dvbc": dib_dvbc,
            "qbe": qde + qje,
            "qbc": qdc + qjc,
            "dqbe_dvbe": dqde_dvbe + cje,
            "dqbe_dvbc": dqde_dvbc,
            "dqbc_dvbc": TR * gbc1 + cjc,
            "rbb": rbb,
        }

    def _replay(
        self,
        xg: np.ndarray | None = None,
        jac_alpha: float | None = None,
        q_only: bool = False,
    ) -> None:
        """Scatter the cached stamp value buffers without re-evaluating.

        When ``xg`` is given (bypass mode) the current and charge stamps
        are extrapolated to the present solution with the cached
        Jacobians: ``i += G_cached @ (x - x_anchor)`` and
        ``q += C_cached @ (x - x_anchor)``.  Bypassed devices then act as
        their exact linearization at the anchor point, which keeps the
        Newton residual continuous in ``x`` (a frozen replay makes the
        branch-current unknowns absorb the ``gm * dv`` discrepancy and
        can lock Newton into an evaluate/replay limit cycle).  Lanes
        evaluated this call have their anchors synced to ``xg`` so their
        correction is exactly zero.

        With ``jac_alpha`` set (fused-Jacobian assembly) the capacitive
        stamps scatter into the conductance buffer scaled by alpha
        instead of into the (unmaintained) C buffer.  ``q_only=True``
        (charges-only assembly) scatters just the charge stamps and
        their extrapolation.
        """
        if not q_only:
            np.add.at(
                self._i_full, self._i_rows, self._i_vals.reshape(-1)
            )
            np.add.at(self._g_flat, self._g_idx, self._g_vals.reshape(-1))
            if jac_alpha is not None:
                np.add.at(
                    self._g_flat, self._c_idx,
                    self._c_vals.reshape(-1) * jac_alpha,
                )
            else:
                np.add.at(
                    self._c_flat, self._c_idx, self._c_vals.reshape(-1)
                )
        np.add.at(self._q_full, self._q_rows, self._q_vals.reshape(-1))
        if xg is not None:
            if not q_only:
                np.add.at(
                    self._i_full, self._g_rows_arr,
                    self._g_vals.reshape(-1)
                    * (xg[self._g_cols_arr] - self._g_anchor),
                )
            np.add.at(
                self._q_full, self._c_rows_arr,
                self._c_vals.reshape(-1)
                * (xg[self._c_cols_arr] - self._c_anchor),
            )

    def load(
        self,
        ctx: LoadContext,
        bypass_tol: float = 0.0,
        q_only: bool = False,
    ) -> int:
        """Stamp every device of the group; mirrors ``BJT.load_dynamic``.

        With ``bypass_tol > 0`` each device compares its control voltages
        (vbe, vbc, vbx, vsc and the base-spreading drop) against the last
        point it was actually evaluated at; devices that all moved less
        than the tolerance replay their cached stamp columns untouched.
        Returns the number of bypassed devices.
        """
        size = self.size
        xg = self._xg
        xg[:size] = ctx.x
        xg[size] = 0.0
        jac_alpha = ctx.jac_alpha
        v_b = xg[self.b_ext]
        v_s = xg[self.s_ext]
        v_ci = xg[self.ci]
        v_bi = xg[self.bi]
        v_ei = xg[self.ei]
        sign = self.sign

        n = self.n
        vbe_raw = sign * (v_bi - v_ei)
        vbc_raw = sign * (v_bi - v_ci)
        vbx = sign * (v_b - v_ci)
        vsc = sign * (v_s - v_ci)
        vrb = v_b - v_bi

        idx = None
        if bypass_tol > 0.0:
            v_now = self._v_now
            v_now[0] = vbe_raw
            v_now[1] = vbc_raw
            v_now[2] = vbx
            v_now[3] = vsc
            v_now[4] = vrb
            # A fresh limits dict (new analysis, retry with different
            # limiting history) or a different gmin invalidates the
            # cached stamps; identity comparison is safe because the
            # cache holds a strong reference to the dict it saw.
            if (self._bypass_limits is ctx.limits
                    and self._bypass_gmin == ctx.gmin):
                diff = self._v_diff
                np.subtract(v_now, self._bypass_v, out=diff)
                np.abs(diff, out=diff)
                moved = (diff > bypass_tol).any(axis=0)
                if not moved.any():
                    # Keep the cached anchor voltages: bypassed devices
                    # always compare against their last *evaluated*
                    # point so sub-tolerance drift cannot accumulate.
                    self._replay(xg, jac_alpha, q_only=q_only)
                    return n
                # The partial path gathers every parameter array per
                # lane; for a vectorized group that only pays off when
                # few lanes moved (the whole-vector math is nearly flat
                # in n).  Mostly-moved calls just evaluate everything.
                count_moved = int(np.count_nonzero(moved))
                if count_moved <= max(1, n // 4):
                    idx = np.flatnonzero(moved)
                    self._bypass_v[:, idx] = v_now[:, idx]
                else:
                    self._bypass_v[...] = v_now
            else:
                self._bypass_v[...] = v_now
            self._bypass_gmin = ctx.gmin
            self._bypass_limits = ctx.limits
        elif self._bypass_limits is not None:
            # A tolerance-zero evaluation rewrites the shared value
            # buffers without tracking anchors — drop the cache so a
            # later bypassed call cannot replay mismatched stamps.
            self._bypass_limits = None
            self._bypass_gmin = None
            self._bypass_v.fill(np.inf)

        if idx is None:
            m = n
            vbe_a, vbc_a = vbe_raw, vbc_raw
            vbx_a, vsc_a, vrb_a = vbx, vsc, vrb
            sign_a, has_rb = sign, self.has_rb
            names_a = self.names
            lim_vt, lim_vcrit = self._lim_vt, self._lim_vcrit
            lanes = None
        else:
            m = len(idx)
            vbe_a, vbc_a = vbe_raw[idx], vbc_raw[idx]
            vbx_a, vsc_a, vrb_a = vbx[idx], vsc[idx], vrb[idx]
            sign_a, has_rb = sign[idx], self.has_rb[idx]
            names_a = [self.names[k] for k in idx]
            idx2 = np.concatenate([idx, idx + n])
            lim_vt, lim_vcrit = self._lim_vt[idx2], self._lim_vcrit[idx2]
            lanes = np.concatenate(
                [idx, idx + n, idx + 2 * n, idx + 3 * n]
            )

        limits = ctx.limits
        v_raw = np.concatenate([vbe_a, vbc_a])
        v_old = v_raw.copy()
        for k, name in enumerate(names_a):
            old = limits.get(name)
            if old is not None:
                v_old[k], v_old[m + k] = old
        v_lim = _pnjlim_vec(v_raw, v_old, lim_vt, lim_vcrit)
        vbe = v_lim[:m]
        vbc = v_lim[m:]
        for name, lim_be, lim_bc in zip(
            names_a, vbe.tolist(), vbc.tolist()
        ):
            limits[name] = (lim_be, lim_bc)

        # Stacked depletion batch: B-E and internal B-C at the limited
        # voltages, external B-C and substrate at the raw ones.
        qdep, cdep = self.junctions.charge_cap(
            np.concatenate([vbe, vbc, vbx_a, vsc_a]), lanes=lanes
        )
        qbx, cbx = qdep[2 * m : 3 * m], cdep[2 * m : 3 * m]
        qjs, cjs = qdep[3 * m :], cdep[3 * m :]

        op = self._evaluate(
            vbe, vbc, ctx.gmin, qdep[:m], cdep[:m],
            qdep[m : 2 * m], cdep[m : 2 * m], idx=idx,
        )
        dbe = vbe_a - vbe
        dbc = vbc_a - vbc

        grb = np.where(
            has_rb, 1.0 / np.maximum(op["rbb"], 1e-3), 0.0
        )
        irb = grb * vrb_a

        ic = op["ic"] + op["dic_dvbe"] * dbe + op["dic_dvbc"] * dbc
        ib = op["ib"] + op["dib_dvbe"] * dbe + op["dib_dvbc"] * dbc
        if idx is None:
            iv, gv = self._i_vals, self._g_vals
            qv, cv = self._q_vals, self._c_vals
        else:
            iv, gv = np.empty((5, m)), np.empty((13, m))
            qv, cv = np.empty((8, m)), np.empty((20, m))
        iv[0] = irb
        iv[1] = -irb
        iv[2] = sign_a * ic
        iv[3] = sign_a * ib
        iv[4] = -sign_a * (ic + ib)

        dic_e, dic_c = op["dic_dvbe"], op["dic_dvbc"]
        dib_e, dib_c = op["dib_dvbe"], op["dib_dvbc"]
        gv[0] = grb
        gv[1] = -grb
        gv[2] = -grb
        gv[3] = grb
        gv[4] = dic_e + dic_c
        gv[5] = -dic_e
        gv[6] = -dic_c
        gv[7] = dib_e + dib_c
        gv[8] = -dib_e
        gv[9] = -dib_c
        gv[10] = -(dic_e + dib_e) - (dic_c + dib_c)
        gv[11] = dic_e + dib_e
        gv[12] = dic_c + dib_c

        # Charges: B'-E', B'-C' in companion form (their voltages are
        # limited); B-C' and S-C' at the raw external voltages.
        qbe = op["qbe"] + op["dqbe_dvbe"] * dbe + op["dqbe_dvbc"] * dbc
        qbc = op["qbc"] + op["dqbc_dvbc"] * dbc
        qv[0] = sign_a * qbe
        qv[1] = -sign_a * qbe
        qv[2] = sign_a * qbc
        qv[3] = -sign_a * qbc
        qv[4] = sign_a * qbx
        qv[5] = -sign_a * qbx
        qv[6] = sign_a * qjs
        qv[7] = -sign_a * qjs

        cpi = op["dqbe_dvbe"]
        cx = op["dqbe_dvbc"]
        cmu = op["dqbc_dvbc"]
        cv[0] = cpi
        cv[1] = -cpi
        cv[2] = -cpi
        cv[3] = cpi
        cv[4] = cx
        cv[5] = -cx
        cv[6] = -cx
        cv[7] = cx
        cv[8] = cmu
        cv[9] = -cmu
        cv[10] = -cmu
        cv[11] = cmu
        cv[12] = cbx
        cv[13] = -cbx
        cv[14] = -cbx
        cv[15] = cbx
        cv[16] = cjs
        cv[17] = -cjs
        cv[18] = -cjs
        cv[19] = cjs

        if idx is not None:
            self._i_vals[:, idx] = iv
            self._g_vals[:, idx] = gv
            self._q_vals[:, idx] = qv
            self._c_vals[:, idx] = cv
        if bypass_tol > 0.0:
            if idx is None:
                self._g_anchor[...] = xg[self._g_cols_arr]
                self._c_anchor[...] = xg[self._c_cols_arr]
            else:
                pos_g = (self._g_lane + idx).reshape(-1)
                pos_c = (self._c_lane + idx).reshape(-1)
                self._g_anchor[pos_g] = xg[self._g_cols_arr[pos_g]]
                self._c_anchor[pos_c] = xg[self._c_cols_arr[pos_c]]
            self._replay(xg, jac_alpha)
        else:
            self._replay(None, jac_alpha)
        return n - m

    def load_stacked(
        self,
        x_stack: np.ndarray,
        gmin: float,
        limits_list: list,
        i_full: np.ndarray,
        q_full: np.ndarray,
        g_flat: np.ndarray,
        c_flat: np.ndarray | None = None,
    ) -> None:
        """Stamp every device for a ``(L, n)`` stack of solutions at once.

        The lane-stacked twin of :meth:`load` at ``bypass_tol == 0``: the
        per-device math is purely elementwise, so adding a leading lane
        axis runs the identical arithmetic per lane — each lane's stamps
        are bit-identical to a scalar :meth:`load` at that lane's ``x``.
        Scatter targets are per-lane flats (``i_full``/``q_full`` are
        ``(L, size+1)``, ``g_flat``/``c_flat`` are ``(L, flat)``); the
        ``np.add.at`` broadcast iterates lane-major, preserving each
        lane's scalar accumulation order over duplicate slots.  The
        shared ``*_vals`` buffers and the device-bypass cache are never
        touched, so interleaved scalar bypassing stays coherent.
        """
        L = x_stack.shape[0]
        size = self.size
        n = self.n
        xg = np.zeros((L, size + 1))
        xg[:, :size] = x_stack
        v_b = xg[:, self.b_ext]
        v_s = xg[:, self.s_ext]
        v_ci = xg[:, self.ci]
        v_bi = xg[:, self.bi]
        v_ei = xg[:, self.ei]
        sign = self.sign

        vbe_raw = sign * (v_bi - v_ei)
        vbc_raw = sign * (v_bi - v_ci)
        vbx = sign * (v_b - v_ci)
        vsc = sign * (v_s - v_ci)
        vrb = v_b - v_bi

        v_raw = np.concatenate([vbe_raw, vbc_raw], axis=1)
        v_old = v_raw.copy()
        names = self.names
        for li, limits in enumerate(limits_list):
            row = v_old[li]
            for k, name in enumerate(names):
                old = limits.get(name)
                if old is not None:
                    row[k], row[n + k] = old
        v_lim = _pnjlim_vec(v_raw, v_old, self._lim_vt, self._lim_vcrit)
        vbe = v_lim[:, :n]
        vbc = v_lim[:, n:]
        for li, limits in enumerate(limits_list):
            for name, lim_be, lim_bc in zip(
                names, vbe[li].tolist(), vbc[li].tolist()
            ):
                limits[name] = (lim_be, lim_bc)

        qdep, cdep = self.junctions.charge_cap(
            np.concatenate([vbe, vbc, vbx, vsc], axis=1)
        )
        qbx, cbx = qdep[:, 2 * n : 3 * n], cdep[:, 2 * n : 3 * n]
        qjs, cjs = qdep[:, 3 * n :], cdep[:, 3 * n :]

        op = self._evaluate(
            vbe, vbc, gmin, qdep[:, :n], cdep[:, :n],
            qdep[:, n : 2 * n], cdep[:, n : 2 * n],
        )
        dbe = vbe_raw - vbe
        dbc = vbc_raw - vbc

        grb = np.where(
            self.has_rb, 1.0 / np.maximum(op["rbb"], 1e-3), 0.0
        )
        irb = grb * vrb

        ic = op["ic"] + op["dic_dvbe"] * dbe + op["dic_dvbc"] * dbc
        ib = op["ib"] + op["dib_dvbe"] * dbe + op["dib_dvbc"] * dbc
        iv = np.empty((L, 5, n))
        gv = np.empty((L, 13, n))
        qv = np.empty((L, 8, n))
        cv = np.empty((L, 20, n))
        iv[:, 0] = irb
        iv[:, 1] = -irb
        iv[:, 2] = sign * ic
        iv[:, 3] = sign * ib
        iv[:, 4] = -sign * (ic + ib)

        dic_e, dic_c = op["dic_dvbe"], op["dic_dvbc"]
        dib_e, dib_c = op["dib_dvbe"], op["dib_dvbc"]
        gv[:, 0] = grb
        gv[:, 1] = -grb
        gv[:, 2] = -grb
        gv[:, 3] = grb
        gv[:, 4] = dic_e + dic_c
        gv[:, 5] = -dic_e
        gv[:, 6] = -dic_c
        gv[:, 7] = dib_e + dib_c
        gv[:, 8] = -dib_e
        gv[:, 9] = -dib_c
        gv[:, 10] = -(dic_e + dib_e) - (dic_c + dib_c)
        gv[:, 11] = dic_e + dib_e
        gv[:, 12] = dic_c + dib_c

        qbe = op["qbe"] + op["dqbe_dvbe"] * dbe + op["dqbe_dvbc"] * dbc
        qbc = op["qbc"] + op["dqbc_dvbc"] * dbc
        qv[:, 0] = sign * qbe
        qv[:, 1] = -sign * qbe
        qv[:, 2] = sign * qbc
        qv[:, 3] = -sign * qbc
        qv[:, 4] = sign * qbx
        qv[:, 5] = -sign * qbx
        qv[:, 6] = sign * qjs
        qv[:, 7] = -sign * qjs

        cpi = op["dqbe_dvbe"]
        cx = op["dqbe_dvbc"]
        cmu = op["dqbc_dvbc"]
        cv[:, 0] = cpi
        cv[:, 1] = -cpi
        cv[:, 2] = -cpi
        cv[:, 3] = cpi
        cv[:, 4] = cx
        cv[:, 5] = -cx
        cv[:, 6] = -cx
        cv[:, 7] = cx
        cv[:, 8] = cmu
        cv[:, 9] = -cmu
        cv[:, 10] = -cmu
        cv[:, 11] = cmu
        cv[:, 12] = cbx
        cv[:, 13] = -cbx
        cv[:, 14] = -cbx
        cv[:, 15] = cbx
        cv[:, 16] = cjs
        cv[:, 17] = -cjs
        cv[:, 18] = -cjs
        cv[:, 19] = cjs

        lane = np.arange(L)[:, None]
        np.add.at(i_full, (lane, self._i_rows[None, :]), iv.reshape(L, -1))
        np.add.at(g_flat, (lane, self._g_idx[None, :]), gv.reshape(L, -1))
        if c_flat is not None:
            np.add.at(
                c_flat, (lane, self._c_idx[None, :]), cv.reshape(L, -1)
            )
        np.add.at(q_full, (lane, self._q_rows[None, :]), qv.reshape(L, -1))


class _RecordingContext:
    """Proxy over a :class:`LoadContext` that records one element's
    voltage reads and stamps so they can be replayed on bypass.

    Everything not intercepted (``limits``, ``gmin``, ``x_prev``, ...)
    delegates to the wrapped context, so the element behaves exactly as
    if it had been handed the real accumulator.
    """

    def __init__(self, ctx: LoadContext):
        self._ctx = ctx
        self.watch: list[int] = []
        self.stamps_i: list[tuple[int, float]] = []
        self.stamps_q: list[tuple[int, float]] = []
        self.stamps_g: list[tuple[int, int, float]] = []
        self.stamps_c: list[tuple[int, int, float]] = []

    def __getattr__(self, name):
        return getattr(self._ctx, name)

    def voltage(self, index: int) -> float:
        if index < 0:
            return 0.0
        self.watch.append(index)
        return self._ctx.x[index]

    def add_i(self, row: int, value: float) -> None:
        if row >= 0:
            self.stamps_i.append((row, value))
            self._ctx.i_vec[row] += value

    def add_q(self, row: int, value: float) -> None:
        if row >= 0:
            self.stamps_q.append((row, value))
            self._ctx.q_vec[row] += value

    def add_g(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.stamps_g.append((row, col, value))
            self._ctx.g_mat[row, col] += value

    def add_c(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.stamps_c.append((row, col, value))
            self._ctx.add_c(row, col, value)

    # The stamp helpers re-route through the recording accessors above.
    stamp_conductance = LoadContext.stamp_conductance
    stamp_capacitance = LoadContext.stamp_capacitance
    stamp_current_source = LoadContext.stamp_current_source


class _ScalarBypass:
    """Record/replay device bypass for one scalar nonlinear element.

    Only used for element classes whose ``load_dynamic`` is a pure
    function of the voltages it reads, ``gmin`` and its ``limits``
    entry (diodes and BJT subclasses outside the vectorized group).
    """

    def __init__(self, element):
        self.element = element
        self.watch: list[int] = []
        self.values: list[float] = []
        self.stamps = None
        self.anchor: dict[int, float] = {}
        self.gmin: float | None = None
        self.limits: dict | None = None

    def invalidate(self) -> None:
        self.stamps = None
        self.limits = None

    def load(self, ctx: LoadContext, bypass_tol: float) -> int:
        """Stamp the element, replaying the cache when every watched
        voltage moved less than ``bypass_tol``; returns 1 on bypass."""
        if (
            bypass_tol > 0.0
            and self.stamps is not None
            and self.limits is ctx.limits
            and self.gmin == ctx.gmin
        ):
            x = ctx.x
            for j, vj in zip(self.watch, self.values):
                if abs(x[j] - vj) > bypass_tol:
                    break
            else:
                si, sq, sg, sc = self.stamps
                i_vec, q_vec = ctx.i_vec, ctx.q_vec
                g_mat, c_mat = ctx.g_mat, ctx.c_mat
                jac_alpha = ctx.jac_alpha
                anchor = self.anchor
                for row, val in si:
                    i_vec[row] += val
                for row, val in sq:
                    q_vec[row] += val
                # Extrapolate I and Q to the present solution with the
                # cached Jacobian entries so the bypassed element acts as
                # its linearization at the anchor (see BJTGroup._replay).
                for row, col, val in sg:
                    g_mat[row, col] += val
                    i_vec[row] += val * (x[col] - anchor[col])
                for row, col, val in sc:
                    if jac_alpha is not None:
                        g_mat[row, col] += val * jac_alpha
                    else:
                        c_mat[row, col] += val
                    q_vec[row] += val * (x[col] - anchor[col])
                return 1
        if bypass_tol > 0.0:
            rec = _RecordingContext(ctx)
            self.element.load_dynamic(rec)
            x = ctx.x
            self.watch = rec.watch
            self.values = [x[j] for j in rec.watch]
            self.stamps = (
                rec.stamps_i, rec.stamps_q, rec.stamps_g, rec.stamps_c
            )
            self.anchor = {
                col: x[col]
                for _, col, _ in rec.stamps_g + rec.stamps_c
            }
            self.gmin = ctx.gmin
            self.limits = ctx.limits
        else:
            self.invalidate()
            self.element.load_dynamic(ctx)
        return 0


class _CooContext(LoadContext):
    """Probe context recording linear Jacobian stamps as COO triples.

    The compile-time ``load_static`` probe runs through this instead of
    a dense :class:`LoadContext`: residual vectors accumulate normally,
    but G/C stamps are kept as ``(row, col, value)`` triples.  The same
    triples then seed the sparsity pattern *and* densify into ``G0``/
    ``C0`` for the dense path — ``np.add.at`` applies duplicates in
    recorded order, so the densified matrices are bit-identical to the
    sequential ``+=`` probe they replace.
    """

    def __init__(self, size: int):
        super().__init__(size, np.zeros(size), None, 0.0, source_scale=0.0)
        self.g_mat = None
        self.c_mat = None
        self.g_rows: list[int] = []
        self.g_cols: list[int] = []
        self.g_vals: list[float] = []
        self.c_rows: list[int] = []
        self.c_cols: list[int] = []
        self.c_vals: list[float] = []

    def add_g(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.g_rows.append(row)
            self.g_cols.append(col)
            self.g_vals.append(value)

    def add_c(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.c_rows.append(row)
            self.c_cols.append(col)
            self.c_vals.append(value)

    @staticmethod
    def densify(size, rows, cols, vals) -> np.ndarray:
        out = np.zeros((size, size))
        if rows:
            np.add.at(
                out,
                (np.asarray(rows, dtype=np.intp),
                 np.asarray(cols, dtype=np.intp)),
                np.asarray(vals),
            )
        return out

    @staticmethod
    def scatter(pattern: SparsityPattern, rows, cols, vals) -> np.ndarray:
        """Accumulate the triples into an ``nnz + 1`` data array."""
        out = np.zeros(pattern.nnz + 1)
        if rows:
            pos = pattern.positions(
                np.asarray(rows, dtype=np.intp),
                np.asarray(cols, dtype=np.intp),
            )
            np.add.at(out, pos, np.asarray(vals))
        return out


# ---------------------------------------------------------------------------
# engines
# ---------------------------------------------------------------------------


class StackedContext:
    """Lane-stacked assembly returned by
    :meth:`CompiledCircuit.evaluate_stacked`.

    ``i``/``q`` are ``(L, size)`` stacks; ``g``/``c`` are ``(L, size,
    size)`` dense stacks or ``(L, nnz)`` pattern-value stacks depending
    on the engine's assembly backend (``c`` is ``None`` unless requested).
    Row ``k`` holds exactly what a scalar ``evaluate`` at lane ``k``'s
    solution would have produced.
    """

    __slots__ = ("i", "g", "q", "c")

    def __init__(self, i, g, q, c=None):
        self.i = i
        self.g = g
        self.q = q
        self.c = c


class CompiledCircuit:
    """Compile-once, evaluate-many circuit engine.

    Construction partitions the elements, stamps the linear part into
    cached ``G0``/``C0`` matrices, precomputes source RHS rows and builds
    the vectorized BJT group.  :meth:`evaluate` then assembles the full
    system into preallocated buffers and returns a
    :class:`~repro.spice.mna.LoadContext` over them — the same object the
    analyses already consume, so the legacy and compiled paths are
    interchangeable.

    The returned context's arrays are *views into engine-owned buffers*:
    they are overwritten by the next :meth:`evaluate` call.  Analyses
    copy what they need to keep (which they already did for the legacy
    path's per-call allocations, only implicitly).
    """

    def __init__(self, circuit: Circuit, solver: LinearSolver | None = None,
                 mode: str | None = None):
        t0 = _time.perf_counter()
        self.circuit = circuit
        size = circuit.assign_indices()
        self.size = size
        self.num_nodes = len(circuit.node_map)
        self.generation = circuit._generation
        self.stats = EngineStats()
        if mode not in (None, "auto", "dense", "sparse"):
            raise AnalysisError(
                f"unknown assembly mode {mode!r}; expected 'auto', "
                "'dense' or 'sparse'"
            )

        sources = []
        nonlinear = []
        for element in circuit:
            if element.has_time_varying_rhs():
                sources.append(element)
            if element.is_nonlinear():
                nonlinear.append(element)
        #: (element, [(row, coeff), ...]) pairs; rows are fixed by the
        #: topology, values are re-read from the waveform per evaluation.
        #: Sources with a constant (DC) waveform are folded into a single
        #: precomputed vector instead — their value never changes, so the
        #: per-evaluation python loop only visits true waveform sources.
        self._source_rows = []
        self._src_dc = np.zeros(size)
        self._has_src_dc = False
        for element in sources:
            rows = list(element.rhs_rows())
            if type(getattr(element, "waveform", None)) is DCWaveform:
                value = element.source_value(None)
                for row, coeff in rows:
                    self._src_dc[row] += coeff * value
                    self._has_src_dc = True
            else:
                self._source_rows.append((element, rows))
        bjts = [e for e in nonlinear if type(e) is BJT]
        self._scalar_dynamic = [e for e in nonlinear if type(e) is not BJT]
        #: Bypass wrappers, aligned with ``_scalar_dynamic``; ``None`` for
        #: element classes whose ``load_dynamic`` is not known to be a
        #: pure function of its voltage reads, gmin and limits entry.
        self._scalar_bypass = [
            _ScalarBypass(e) if isinstance(e, (Diode, BJT)) else None
            for e in self._scalar_dynamic
        ]
        self._eval_cost = len(sources) + len(nonlinear)
        self.has_constant_jacobian = not nonlinear

        # Constant linear stamps, captured by probing load_static with
        # x = 0 and source_scale = 0: every linear element then stamps
        # exactly its Jacobian and a zero residual.  The probe records
        # COO triples so the same pass seeds the symbolic sparsity
        # pattern and (in dense mode) densifies into G0/C0.
        probe = _CooContext(size)
        for element in circuit:
            element.load_static(probe)
        self._i0 = probe.i_vec
        self._q0 = probe.q_vec

        # Evaluation buffers carry a dummy slot (row/col ``size``) that
        # absorbs ground stamps from the vectorized group.
        n1 = size + 1
        self._i_full = np.zeros(n1)
        self._q_full = np.zeros(n1)
        self._xg = np.zeros(n1)

        self._bjt_group = (
            BJTGroup(bjts, size, self._i_full, self._q_full, self._xg)
            if bjts
            else None
        )

        # -- symbolic pattern: every stamp slot any evaluation can touch --
        slot_rows = [np.asarray(probe.g_rows + probe.c_rows, dtype=np.intp),
                     np.arange(size, dtype=np.intp)]  # gshunt diagonal
        slot_cols = [np.asarray(probe.g_cols + probe.c_cols, dtype=np.intp),
                     np.arange(size, dtype=np.intp)]
        if self._bjt_group is not None:
            group = self._bjt_group
            slot_rows += [group._g_rows_arr, group._c_rows_arr]
            slot_cols += [group._g_cols_arr, group._c_cols_arr]
        for element in self._scalar_dynamic:
            # Scalar nonlinear stamps depend on the operating point
            # (e.g. conditional cross terms), so the pattern takes the
            # full cross product of the element's unknowns — a superset
            # of anything load_dynamic can ever stamp.
            own = np.asarray(
                [k for k in (*element.node_index, *element.branch_index)
                 if k >= 0],
                dtype=np.intp,
            )
            slot_rows.append(np.repeat(own, own.size))
            slot_cols.append(np.tile(own, own.size))
        self.pattern: SparsityPattern | None = None
        nnz = None
        if _sp is not None:
            self.pattern = SparsityPattern(
                size, np.concatenate(slot_rows), np.concatenate(slot_cols)
            )
            nnz = self.pattern.nnz

        # -- assembly-mode decision ----------------------------------------
        requested = mode or "auto"
        if requested == "auto":
            if self.pattern is None:
                backend = "dense"
            elif solver is not None and not isinstance(solver, SparseLUSolver):
                # An explicitly supplied non-sparse solver cannot consume
                # PatternMatrix systems natively; honor it densely.
                backend = "dense"
            else:
                backend = DEFAULT_SOLVER_COST_MODEL.choose(size, nnz)
        else:
            backend = requested
        if backend == "sparse":
            if self.pattern is None:
                raise AnalysisError(
                    "sparse assembly requested but scipy is absent"
                )
            if solver is None:
                solver = SparseLUSolver(
                    permc_spec=getattr(self.circuit, "_permc_spec", None)
                )
            elif not isinstance(solver, SparseLUSolver):
                raise AnalysisError(
                    f"sparse assembly requires a SparseLUSolver backend, "
                    f"got {solver.name!r}"
                )
        self.assembly = backend

        if backend == "sparse":
            pattern = self.pattern
            self._base_g = _CooContext.scatter(
                pattern, probe.g_rows, probe.g_cols, probe.g_vals
            )
            self._base_c = _CooContext.scatter(
                pattern, probe.c_rows, probe.c_cols, probe.c_vals
            )
            # CSR copies of the constant stamps for the residual/charge
            # matvecs G0 @ x and C0 @ x.
            self._g0_csr = pattern.csc(self._base_g).tocsr()
            self._c0_csr = pattern.csc(self._base_c).tocsr()
            self._g_data = np.zeros(pattern.nnz + 1)
            self._c_data = np.zeros(pattern.nnz + 1)
            self._g_pm = PatternMatrix(pattern, self._g_data)
            self._c_pm = PatternMatrix(pattern, self._c_data)
            self._g0 = self._c0 = None
            self._g_full = self._c_full = None
            if self._bjt_group is not None:
                self._bjt_group.bind_sparse(
                    pattern, self._g_data, self._c_data
                )
            self.stats.pattern_nnz = pattern.nnz
            GLOBAL_STATS.pattern_nnz = pattern.nnz
        else:
            self._g0 = _CooContext.densify(
                size, probe.g_rows, probe.g_cols, probe.g_vals
            )
            self._c0 = _CooContext.densify(
                size, probe.c_rows, probe.c_cols, probe.c_vals
            )
            self._g_full = np.zeros((n1, n1))
            self._c_full = np.zeros((n1, n1))
            if self._bjt_group is not None:
                self._bjt_group.bind_dense(self._g_full, self._c_full)

        self.solver = solver if solver is not None else make_solver(
            size, permc_spec=getattr(self.circuit, "_permc_spec", None)
        )
        self.solver.bind(self.stats, GLOBAL_STATS)
        self.stats.solver = self.solver.name
        self.stats.assembly = backend
        GLOBAL_STATS.solver = self.solver.name
        GLOBAL_STATS.assembly = backend
        self.stats.compilations += 1
        GLOBAL_STATS.compilations += 1
        elapsed = _time.perf_counter() - t0
        self.stats.wall_seconds += elapsed
        GLOBAL_STATS.wall_seconds += elapsed

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        x: np.ndarray,
        time: float | None = None,
        gmin: float = 1e-12,
        x_prev: np.ndarray | None = None,
        limits: dict | None = None,
        source_scale: float = 1.0,
        bypass_tol: float = 0.0,
        jac_alpha: float | None = None,
        charges_only: bool = False,
        residual_only: bool = False,
    ) -> LoadContext:
        """Assemble I, G, Q, C at candidate ``x``; returns a LoadContext
        whose arrays are views into the engine's reusable buffers.

        ``bypass_tol > 0`` enables device bypass: nonlinear devices whose
        terminal voltages all moved less than the tolerance since their
        last actual evaluation replay cached stamps instead of
        re-evaluating (counted in ``stats.bypassed_evals``).  At 0 the
        assembly is bit-identical to the non-bypassing path.

        ``jac_alpha`` (transient hot path) fuses the integration formula
        into assembly: ``g_mat`` is built directly as ``G + alpha*C``
        (one dense pass instead of two copies plus a dense
        multiply-add in the integrator callback) and ``c_mat`` is left
        untouched.  ``charges_only=True`` assembles just ``q_vec`` — the
        contract for the converged-point context handed back to the
        integrator, whose accept path reads nothing else; ``i_vec``,
        ``g_mat`` and ``c_mat`` are stale buffers in that mode.
        ``residual_only=True`` skips the dense Jacobian build (``g_mat``
        and ``c_mat`` are stale) while assembling ``i_vec``/``q_vec`` in
        full — the contract for chord-Newton iterations that will reuse
        a cached factorization.
        """
        size = self.size
        i = self._i_full[:size]
        q = self._q_full[:size]
        sparse = self.assembly == "sparse"
        if sparse:
            # Flat nnz-length assembly: no (n, n) buffer exists, let
            # alone gets written.  The constant stamps are CSR matvecs
            # (O(nnz)) and base-value copies into the pattern data.
            g = self._g_pm
            c = self._c_pm
            q[:] = self._c0_csr.dot(x)
            q += self._q0
        else:
            g = self._g_full[:size, :size]
            c = self._c_full[:size, :size]
            np.dot(self._c0, x, out=q)
            q += self._q0
        if not charges_only:
            if residual_only:
                # Caller will reuse a cached factorization: leave the
                # stale g/c buffers alone.  Device stamps still land in
                # them, which is harmless — nothing reads the Jacobian
                # on a chord-reuse iteration.
                pass
            elif sparse:
                if jac_alpha is not None:
                    np.multiply(self._base_c, jac_alpha, out=self._g_data)
                    self._g_data += self._base_g
                else:
                    np.copyto(self._g_data, self._base_g)
                    np.copyto(self._c_data, self._base_c)
            elif jac_alpha is not None:
                np.multiply(self._c0, jac_alpha, out=g)
                g += self._g0
            else:
                np.copyto(g, self._g0)
                np.copyto(c, self._c0)
            if sparse:
                i[:] = self._g0_csr.dot(x)
                i += self._i0
            else:
                np.dot(self._g0, x, out=i)
                i += self._i0

            if source_scale != 0.0:
                if self._has_src_dc:
                    if source_scale == 1.0:
                        i += self._src_dc
                    else:
                        i += self._src_dc * source_scale
                for element, rows in self._source_rows:
                    value = element.source_value(time) * source_scale
                    if value != 0.0:
                        for row, coeff in rows:
                            i[row] += coeff * value

        ctx = LoadContext(
            size, x, time, gmin, source_scale, buffers=(i, g, q, c)
        )
        ctx.x_prev = x_prev
        if not charges_only:
            ctx.jac_alpha = jac_alpha
        if limits is not None:
            ctx.limits = limits

        bypassed = 0
        if self._bjt_group is not None:
            bypassed += self._bjt_group.load(
                ctx, bypass_tol, q_only=charges_only
            )
        if bypass_tol > 0.0:
            for element, wrapper in zip(
                self._scalar_dynamic, self._scalar_bypass
            ):
                if wrapper is None:
                    element.load_dynamic(ctx)
                else:
                    bypassed += wrapper.load(ctx, bypass_tol)
        else:
            for wrapper in self._scalar_bypass:
                if wrapper is not None:
                    wrapper.invalidate()
            for element in self._scalar_dynamic:
                element.load_dynamic(ctx)

        self.stats.assemblies += 1
        GLOBAL_STATS.assemblies += 1
        if sparse:
            self.stats.sparse_assemblies += 1
            GLOBAL_STATS.sparse_assemblies += 1
        else:
            self.stats.dense_assemblies += 1
            GLOBAL_STATS.dense_assemblies += 1
        self.stats.element_evals += self._eval_cost - bypassed
        GLOBAL_STATS.element_evals += self._eval_cost - bypassed
        if bypassed:
            self.stats.bypassed_evals += bypassed
            GLOBAL_STATS.bypassed_evals += bypassed
        return ctx

    @property
    def supports_stacked_evaluate(self) -> bool:
        """Whether :meth:`evaluate_stacked` covers this circuit.

        True when every nonlinear device belongs to the vectorized BJT
        group — scalar-dynamic elements (diodes, behavioral elements)
        would need a per-lane Python loop, which is exactly what the
        stacked path exists to avoid.
        """
        return not self._scalar_dynamic

    def evaluate_stacked(
        self,
        x_stack: np.ndarray,
        gmin: float = 1e-12,
        limits_list: list | None = None,
        source_scale: float = 1.0,
        with_c: bool = False,
    ) -> "StackedContext":
        """Assemble I, G (and optionally C, Q) for a ``(L, n)`` solution
        stack in one vectorized pass.

        The lane-stacked twin of :meth:`evaluate` at its DC defaults
        (``time=None``, ``bypass_tol=0``): every lane's arrays are
        bit-identical to a scalar :meth:`evaluate` at that lane's ``x``
        with that lane's ``limits`` dict.  The base-stamp matvecs stay
        per-lane (matching the scalar BLAS/CSR call exactly); everything
        device-side runs stacked through
        :meth:`BJTGroup.load_stacked`.  Buffers are freshly allocated
        per call — unlike :meth:`evaluate`, the returned views survive
        subsequent calls.
        """
        size = self.size
        n1 = size + 1
        L = x_stack.shape[0]
        if limits_list is None:
            limits_list = [dict() for _ in range(L)]
        sparse = self.assembly == "sparse"
        i_full = np.zeros((L, n1))
        q_full = np.zeros((L, n1))
        c_buf = None
        if sparse:
            g_buf = np.empty((L, self.pattern.nnz + 1))
            g_buf[:] = self._base_g
            if with_c:
                c_buf = np.empty((L, self.pattern.nnz + 1))
                c_buf[:] = self._base_c
            for k in range(L):
                i_full[k, :size] = self._g0_csr.dot(x_stack[k])
                q_full[k, :size] = self._c0_csr.dot(x_stack[k])
        else:
            g_buf = np.zeros((L, n1, n1))
            g_buf[:, :size, :size] = self._g0
            if with_c:
                c_buf = np.zeros((L, n1, n1))
                c_buf[:, :size, :size] = self._c0
            for k in range(L):
                i_full[k, :size] = np.dot(self._g0, x_stack[k])
                q_full[k, :size] = np.dot(self._c0, x_stack[k])
        i_full[:, :size] += self._i0
        q_full[:, :size] += self._q0

        if source_scale != 0.0:
            if self._has_src_dc:
                if source_scale == 1.0:
                    i_full[:, :size] += self._src_dc
                else:
                    i_full[:, :size] += self._src_dc * source_scale
            for element, rows in self._source_rows:
                value = element.source_value(None) * source_scale
                if value != 0.0:
                    for row, coeff in rows:
                        i_full[:, row] += coeff * value

        if self._bjt_group is not None:
            if sparse:
                g_flat, c_flat = g_buf, c_buf
            else:
                g_flat = g_buf.reshape(L, -1)
                c_flat = c_buf.reshape(L, -1) if with_c else None
            self._bjt_group.load_stacked(
                x_stack, gmin, limits_list, i_full, q_full, g_flat, c_flat
            )

        self.stats.assemblies += L
        GLOBAL_STATS.assemblies += L
        if sparse:
            self.stats.sparse_assemblies += L
            GLOBAL_STATS.sparse_assemblies += L
            g_view = g_buf[:, : self.pattern.nnz]
            c_view = c_buf[:, : self.pattern.nnz] if with_c else None
        else:
            self.stats.dense_assemblies += L
            GLOBAL_STATS.dense_assemblies += L
            g_view = g_buf[:, :size, :size]
            c_view = c_buf[:, :size, :size] if with_c else None
        self.stats.element_evals += self._eval_cost * L
        GLOBAL_STATS.element_evals += self._eval_cost * L
        return StackedContext(
            i_full[:, :size], g_view, q_full[:, :size], c_view
        )

    def solve(self, a: np.ndarray, b: np.ndarray, token=None,
              chord: bool = False) -> np.ndarray:
        """Solve ``a @ x = b`` through the pluggable backend.

        ``token``-based factorization reuse is only honoured for circuits
        with a constant Jacobian — for nonlinear circuits every Newton
        matrix differs and reuse would silently turn Newton into a chord
        method with a stale Jacobian.  ``chord=True`` opts in to exactly
        that: the caller (``newton_solve``) deliberately freezes the
        Jacobian under ``token`` and watches residual contraction itself.
        """
        if token is not None and not chord and not self.has_constant_jacobian:
            token = None
        return self.solver.solve(a, b, token=token)

    @property
    def supports_chord(self) -> bool:
        """Whether the bound solver can keep a factorization alive for
        chord-Newton reuse."""
        return self.solver.caches_factorization

    #: The compiled assembler can build ``G + alpha*C`` in one pass
    #: (``evaluate(jac_alpha=...)``); the transient hot path keys on this.
    supports_fused_jacobian = True

    def has_factorization(self, token) -> bool:
        return self.solver.has_factorization(token)

    def solve_cached(self, b: np.ndarray) -> np.ndarray:
        return self.solver.solve_cached(b)

    def solve_batched(self, systems: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
        """Solve a stack of systems through the pluggable backend.

        Used by the blocked AC/noise frequency sweeps: every system in
        the stack is distinct (``G + j*omega_k*C``), so there is no
        factorization reuse — the win is one vectorized LAPACK dispatch
        instead of a per-frequency Python loop.
        """
        return self.solver.solve_batched(systems, rhs)

    def solve_batched_exact(self, systems: np.ndarray,
                            rhs: np.ndarray) -> np.ndarray:
        """Per-lane solves bit-identical to this engine's scalar
        :meth:`solve` — the blocked DC Newton path (see
        :func:`repro.spice.dcop.newton_solve_batched`).  Singular lanes
        return NaN instead of raising."""
        return self.solver.solve_batched_exact(systems, rhs)

    def solve_pattern_batched(self, data: np.ndarray, rhs: np.ndarray,
                              transpose: bool = False) -> np.ndarray:
        """Solve a ``(batch, nnz)`` stack over the compiled pattern.

        The sparse-assembly analogue of :meth:`solve_batched`: blocked
        AC/noise build per-frequency value vectors over the fixed
        pattern instead of dense ``(batch, n, n)`` stacks.  Only
        meaningful on a sparse-assembly engine.
        """
        if self.pattern is None or self.assembly != "sparse":
            raise AnalysisError(
                "solve_pattern_batched requires a sparse-assembly engine"
            )
        return self.solver.solve_pattern_batched(
            self.pattern, data, rhs, transpose=transpose
        )

    def timed(self) -> _timed_stats:
        """Context manager charging elapsed wall time to this engine."""
        return _timed_stats(self.stats, GLOBAL_STATS)

    def invalidate_factorization(self) -> None:
        self.solver.invalidate()


class LegacyEngine:
    """Reference engine: per-evaluation full re-stamp (the seed behavior).

    Exposes the same ``evaluate``/``solve``/``stats`` surface as
    :class:`CompiledCircuit` so analyses and equivalence tests can swap
    engines freely.
    """

    has_constant_jacobian = False
    #: The legacy path re-stamps everything per call; it cannot keep a
    #: factorization alive, so chord-Newton degrades to full Newton.
    supports_chord = False
    #: No fused G + alpha*C assembly either — the integrator keeps its
    #: reference dense multiply-add against this engine.
    supports_fused_jacobian = False
    #: No symbolic pattern: the legacy path always assembles densely.
    pattern = None
    assembly = "dense"

    def __init__(self, circuit: Circuit, solver: LinearSolver | None = None):
        self.circuit = circuit
        self.size = circuit.assign_indices()
        self.num_nodes = len(circuit.node_map)
        self.generation = circuit._generation
        self.stats = EngineStats()
        self.solver = solver if solver is not None else LinearSolver()
        self.solver.bind(self.stats, GLOBAL_STATS)
        self.stats.solver = self.solver.name

    def evaluate(
        self,
        x: np.ndarray,
        time: float | None = None,
        gmin: float = 1e-12,
        x_prev: np.ndarray | None = None,
        limits: dict | None = None,
        source_scale: float = 1.0,
        bypass_tol: float = 0.0,
        jac_alpha: float | None = None,
        charges_only: bool = False,
        residual_only: bool = False,
    ) -> LoadContext:
        # bypass_tol / jac_alpha / charges_only / residual_only are
        # hot-path options of the compiled engine; the reference path
        # always re-stamps the complete system.
        self.stats.assemblies += 1
        GLOBAL_STATS.assemblies += 1
        count = len(self.circuit)
        self.stats.element_evals += count
        GLOBAL_STATS.element_evals += count
        return load_circuit(
            self.circuit,
            x,
            time=time,
            gmin=gmin,
            x_prev=x_prev,
            limits=limits,
            source_scale=source_scale,
        )

    def solve(self, a: np.ndarray, b: np.ndarray, token=None,
              chord: bool = False) -> np.ndarray:
        return self.solver.solve(a, b, token=None)

    def has_factorization(self, token) -> bool:
        return False

    def solve_cached(self, b: np.ndarray) -> np.ndarray:
        return self.solver.solve_cached(b)

    def timed(self) -> _timed_stats:
        return _timed_stats(self.stats, GLOBAL_STATS)

    def invalidate_factorization(self) -> None:
        self.solver.invalidate()


# ---------------------------------------------------------------------------
# engine resolution / caching
# ---------------------------------------------------------------------------


def compile_circuit(
    circuit: Circuit, solver: LinearSolver | None = None,
    mode: str | None = None,
) -> CompiledCircuit:
    """Compile ``circuit`` into a fresh :class:`CompiledCircuit`."""
    return CompiledCircuit(circuit, solver=solver, mode=mode)


def get_engine(circuit: Circuit, mode: str | None = None) -> CompiledCircuit:
    """The circuit's cached compiled engine, rebuilt when stale.

    Staleness is tracked by ``Circuit._generation`` (bumped on element
    add/remove and by :meth:`Circuit.invalidate`).  ``mode`` pins the
    assembly backend (``"dense"``/``"sparse"``; default ``"auto"``);
    engines are cached per mode so e.g. a dense-vs-sparse equivalence
    test doesn't thrash one cache slot.
    """
    circuit.assign_indices()
    key = mode or "auto"
    engines = getattr(circuit, "_compiled_engines", None)
    if engines is None:
        engines = circuit._compiled_engines = {}
    cached = engines.get(key)
    if cached is not None and cached.generation == circuit._generation:
        return cached
    engine = CompiledCircuit(circuit, mode=mode)
    engines[key] = engine
    return engine


def resolve_engine(circuit: Circuit, engine=None):
    """Resolve an analysis ``engine=`` argument.

    ``None`` uses the circuit's cached compiled engine, the string
    ``"legacy"`` a cached per-element re-stamping engine, the string
    ``"compiled"`` the compiled engine explicitly; ``"dense"``,
    ``"sparse"`` and ``"auto"`` pin the compiled engine's assembly
    backend; an engine object is validated against the circuit's
    current generation.
    """
    if engine is None or engine == "compiled":
        return get_engine(circuit)
    if engine in ("dense", "sparse", "auto"):
        return get_engine(circuit, mode=engine)
    if engine == "legacy":
        circuit.assign_indices()
        cached = getattr(circuit, "_legacy_engine", None)
        if cached is not None and cached.generation == circuit._generation:
            return cached
        legacy = LegacyEngine(circuit)
        circuit._legacy_engine = legacy
        return legacy
    if isinstance(engine, str):
        raise AnalysisError(
            f"unknown engine {engine!r}; expected 'compiled', 'legacy', "
            "'dense', 'sparse' or 'auto'"
        )
    if engine.circuit is not circuit:
        raise AnalysisError("engine was compiled for a different circuit")
    if engine.generation != circuit._generation:
        raise AnalysisError(
            "engine is stale: the circuit changed after compilation "
            "(recompile with compile_circuit, or pass engine=None)"
        )
    return engine

"""DC operating-point solution by Newton-Raphson with homotopies.

The solve ladder mirrors SPICE: plain Newton first, then gmin stepping
(relaxing the junction shunt conductance from 1e-2 S down to the target),
then source stepping (ramping all independent sources from zero).  Each
stage warm-starts from the best solution found so far.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from .mna import load_circuit
from .netlist import Circuit


@dataclass(frozen=True)
class Tolerances:
    """Newton convergence tolerances (SPICE option names)."""

    reltol: float = 1e-3
    vntol: float = 1e-6  #: absolute voltage tolerance
    abstol: float = 1e-12  #: absolute current tolerance
    max_iterations: int = 100

    def converged(self, dx: np.ndarray, x: np.ndarray, num_nodes: int) -> bool:
        """Per-unknown step-size test: voltages vs vntol, currents vs abstol."""
        for i in range(len(dx)):
            atol = self.vntol if i < num_nodes else self.abstol
            limit = self.reltol * max(abs(x[i]), abs(x[i] + dx[i])) + atol
            if abs(dx[i]) > limit:
                return False
        return True


#: Small conductance stamped from every node to ground to avoid floating
#: subcircuits making the Jacobian singular.
DIAG_GSHUNT = 1e-12


def newton_solve(
    circuit: Circuit,
    x0: np.ndarray,
    tolerances: Tolerances,
    gmin: float,
    source_scale: float = 1.0,
    time: float | None = None,
    limits: dict | None = None,
    dynamic=None,
) -> np.ndarray:
    """Run Newton iterations on F(x) = I(x) [+ dynamic terms] until converged.

    ``dynamic``, when given, is a callable ``(ctx, F, J) -> None`` that adds
    the integration-formula terms (used by transient analysis).  Raises
    :class:`~repro.errors.ConvergenceError` if the iteration limit is hit
    or the Jacobian goes singular.
    """
    num_nodes = len(circuit.node_map)
    x = np.array(x0, dtype=float)
    if limits is None:
        limits = {}
    for _ in range(tolerances.max_iterations):
        ctx = load_circuit(
            circuit, x, time=time, gmin=gmin, limits=limits,
            source_scale=source_scale,
        )
        residual = ctx.i_vec.copy()
        jacobian = ctx.g_mat.copy()
        if dynamic is not None:
            dynamic(ctx, residual, jacobian)
        for i in range(num_nodes):
            jacobian[i, i] += DIAG_GSHUNT
            residual[i] += DIAG_GSHUNT * x[i]
        try:
            dx = np.linalg.solve(jacobian, -residual)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"singular Jacobian: {exc}") from exc
        if not np.all(np.isfinite(dx)):
            raise ConvergenceError("non-finite Newton step")
        x += dx
        if tolerances.converged(dx, x - dx, num_nodes):
            return x
    raise ConvergenceError(
        f"Newton failed to converge in {tolerances.max_iterations} iterations"
    )


def solve_dc(
    circuit: Circuit,
    x0: np.ndarray | None = None,
    tolerances: Tolerances | None = None,
    gmin: float = 1e-12,
    limits: dict | None = None,
) -> np.ndarray:
    """DC operating point with the full homotopy ladder.

    Returns the solution vector (node voltages then branch currents).
    """
    circuit.assign_indices()
    if tolerances is None:
        tolerances = Tolerances()
    if x0 is None:
        x0 = np.zeros(circuit.num_unknowns)
    if limits is None:
        limits = {}

    try:
        return newton_solve(circuit, x0, tolerances, gmin, limits=limits)
    except ConvergenceError:
        pass

    # gmin stepping: solve with a heavy junction shunt, then relax it.
    x = np.array(x0, dtype=float)
    try:
        step_limits: dict = {}
        relax_gmins = list(np.geomspace(1e-2, gmin, 11)) if gmin > 0 else list(
            np.geomspace(1e-2, 1e-12, 11)
        )
        for step_gmin in relax_gmins:
            x = newton_solve(circuit, x, tolerances, step_gmin, limits=step_limits)
        if relax_gmins[-1] != gmin:
            x = newton_solve(circuit, x, tolerances, gmin, limits=step_limits)
        limits.update(step_limits)
        return x
    except ConvergenceError:
        pass

    # Source stepping: ramp all independent sources from zero.
    x = np.zeros(circuit.num_unknowns)
    step_limits = {}
    scale = 0.0
    step = 0.1
    failures = 0
    while scale < 1.0:
        target = min(scale + step, 1.0)
        try:
            x = newton_solve(
                circuit, x, tolerances, gmin,
                source_scale=target, limits=step_limits,
            )
            scale = target
            step = min(step * 1.5, 0.25)
        except ConvergenceError:
            failures += 1
            step /= 4.0
            if failures > 40 or step < 1e-6:
                raise ConvergenceError(
                    "DC operating point: Newton, gmin stepping and source "
                    "stepping all failed"
                ) from None
    limits.update(step_limits)
    return x

"""DC operating-point solution by Newton-Raphson with homotopies.

The solve ladder mirrors SPICE: plain Newton first, then gmin stepping
(relaxing the junction shunt conductance from 1e-2 S down to the target),
then source stepping (ramping all independent sources from zero).  Each
stage warm-starts from the best solution found so far.

Per-iteration assembly goes through an engine (see
:mod:`repro.spice.engine`): by default the circuit's cached
:class:`~repro.spice.engine.CompiledCircuit`, which stamps the linear
part once and evaluates only the nonlinear devices per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import ConvergenceError, ConvergenceReport
from .engine import resolve_engine
from .netlist import Circuit


def weighted_error_vector(
    delta: np.ndarray,
    ref_a: np.ndarray,
    ref_b: np.ndarray,
    num_nodes: int,
    reltol: float,
    atol_nodes: float,
    atol_branches: float,
) -> np.ndarray:
    """Per-unknown |delta| in units of the per-unknown tolerance.

    The tolerance for unknown ``i`` is
    ``reltol * max(|ref_a[i]|, |ref_b[i]|) + atol``, with ``atol``
    switching from the node (voltage) to the branch (current) value at
    index ``num_nodes``.
    """
    scale = reltol * np.maximum(np.abs(ref_a), np.abs(ref_b))
    scale[:num_nodes] += atol_nodes
    scale[num_nodes:] += atol_branches
    return np.abs(delta) / scale


def weighted_max_error(
    delta: np.ndarray,
    ref_a: np.ndarray,
    ref_b: np.ndarray,
    num_nodes: int,
    reltol: float,
    atol_nodes: float,
    atol_branches: float,
) -> float:
    """Largest entry of :func:`weighted_error_vector`.

    Shared by the Newton step-size test and the transient
    local-truncation-error estimate.
    """
    return float(np.max(weighted_error_vector(
        delta, ref_a, ref_b, num_nodes, reltol, atol_nodes, atol_branches
    )))


def _failure_report(
    circuit: Circuit,
    stage: str,
    iterations: int,
    residual: float,
    worst: int,
    gmin: float,
    source_scale: float,
    time: float | None,
) -> ConvergenceReport:
    """Assemble the forensics record for one failed Newton run."""
    worst_name = ""
    if worst >= 0:
        try:
            worst_name = circuit.unknown_name(worst)
        except Exception:  # name lookup must never mask the real failure
            worst_name = f"unknown[{worst}]"
    return ConvergenceReport(
        stage=stage,
        iterations=iterations,
        residual=residual,
        worst_index=worst,
        worst_name=worst_name,
        gmin=gmin,
        source_scale=source_scale,
        time=time,
    )


@dataclass(frozen=True)
class Tolerances:
    """Newton convergence tolerances (SPICE option names)."""

    reltol: float = 1e-3
    vntol: float = 1e-6  #: absolute voltage tolerance
    abstol: float = 1e-12  #: absolute current tolerance
    max_iterations: int = 100

    def converged(self, dx: np.ndarray, x: np.ndarray, num_nodes: int) -> bool:
        """Per-unknown step-size test: voltages vs vntol, currents vs abstol."""
        return (
            weighted_max_error(
                dx, x, x + dx, num_nodes,
                self.reltol, self.vntol, self.abstol,
            )
            <= 1.0
        )


#: Small conductance stamped from every node to ground to avoid floating
#: subcircuits making the Jacobian singular.
DIAG_GSHUNT = 1e-12


#: A chord iteration must shrink the weighted error by at least this
#: factor per step, or the frozen Jacobian is declared stale and
#: refactorized (SPICE's Newton-Richardson convergence watch).
CHORD_CONTRACTION = 0.5


def _count_refactorization(engine) -> None:
    from .engine import GLOBAL_STATS

    engine.stats.refactorizations += 1
    GLOBAL_STATS.refactorizations += 1


def newton_solve(
    circuit: Circuit,
    x0: np.ndarray,
    tolerances: Tolerances,
    gmin: float,
    source_scale: float = 1.0,
    time: float | None = None,
    limits: dict | None = None,
    dynamic=None,
    engine=None,
    jacobian_token=None,
    chord: bool = False,
    bypass_tol: float = 0.0,
    jac_alpha: float | None = None,
    return_context=False,
    rhs_delta: np.ndarray | None = None,
):
    """Run Newton iterations on F(x) = I(x) [+ dynamic terms] until converged.

    ``dynamic``, when given, is a callable ``(ctx, F, J) -> None`` that adds
    the integration-formula terms (used by transient analysis).  ``engine``
    selects the evaluation engine (see
    :func:`repro.spice.engine.resolve_engine`); ``jacobian_token``, when
    the circuit has a constant Jacobian, lets the linear solver reuse its
    factorization across iterations and calls carrying the same token.

    ``chord=True`` extends that reuse to nonlinear circuits
    (chord / Newton-Richardson iteration): the Jacobian factorized under
    ``jacobian_token`` is kept across iterations *and* across calls
    carrying the same token, while the weighted error must contract by
    :data:`CHORD_CONTRACTION` per chord step — otherwise the factorization
    is declared stale and rebuilt.  If the chord loop exhausts the
    iteration budget it falls back to one full-Newton pass (with device
    bypass disabled) before raising.  ``bypass_tol`` is forwarded to
    ``engine.evaluate`` for device bypass.

    ``return_context=True`` returns ``(x, ctx)`` where ``ctx`` is a
    :class:`~repro.spice.mna.LoadContext` evaluated at (or, with
    bypass/chord enabled, within Newton tolerance of) the converged
    solution — transient analysis reads its charge vector instead of
    re-assembling.  Raises :class:`~repro.errors.ConvergenceError` if the
    iteration limit is hit or the Jacobian goes singular.

    ``jac_alpha``, when the engine supports fused assembly, makes
    ``evaluate`` build ``g_mat = G + jac_alpha*C`` directly; the
    ``dynamic`` callback must then add only the residual's integration
    terms and leave the Jacobian alone.

    ``rhs_delta``, when given, is a per-unknown residual offset added to
    every assembly (scaled by ``source_scale``, like the sources it
    stands in for).  It is how sweeps re-bias independent sources
    without recompiling the engine: the compiled circuit folds DC
    source values into its cached RHS at compile time, so an override
    is expressed as ``coeff * (level - base)`` on the source's residual
    rows instead (see :class:`repro.sweep.batched.BlockedDCSweep`).  The
    scalar and blocked Newton paths apply it at the same point with the
    same arithmetic, which is what keeps them bit-identical.
    """
    engine = resolve_engine(circuit, engine)
    num_nodes = engine.num_nodes
    x = np.array(x0, dtype=float)
    if limits is None:
        limits = {}
    diag = np.arange(num_nodes)
    chord_ok = (
        chord
        and jacobian_token is not None
        and getattr(engine, "supports_chord", False)
    )
    full_newton = not chord_ok
    # The chord loop gets the normal budget; the full-Newton fallback the
    # same again, so a stale-Jacobian stall can never mask a solvable step.
    max_iterations = tolerances.max_iterations * (2 if chord_ok else 1)
    eff_bypass = bypass_tol
    refactor_next = False
    last_error = math.nan
    prev_error = math.inf
    worst = -1
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if not full_newton and iterations > tolerances.max_iterations:
            # Chord budget exhausted: refactorize every iteration and
            # re-evaluate every device from here on.
            full_newton = True
            eff_bypass = 0.0
            engine.invalidate_factorization()
        use_cached = (
            not full_newton
            and not refactor_next
            and engine.has_factorization(jacobian_token)
        )
        ctx = engine.evaluate(
            x, time=time, gmin=gmin, limits=limits,
            source_scale=source_scale, bypass_tol=eff_bypass,
            jac_alpha=jac_alpha,
            # A chord-reuse iteration never reads the Jacobian, so skip
            # its dense assembly entirely.
            residual_only=use_cached,
        )
        # The context arrays are engine-owned buffers (or, for the legacy
        # engine, per-call allocations); either way they are free to
        # mutate — the next evaluation rebuilds them.
        residual = ctx.i_vec
        jacobian = ctx.g_mat
        if rhs_delta is not None:
            if source_scale == 1.0:
                residual += rhs_delta
            else:
                residual += rhs_delta * source_scale
        if dynamic is not None:
            dynamic(ctx, residual, jacobian)
        if not use_cached:
            jacobian[diag, diag] += DIAG_GSHUNT
        residual[:num_nodes] += DIAG_GSHUNT * x[:num_nodes]
        try:
            if use_cached:
                dx = engine.solve_cached(-residual)
            else:
                dx = engine.solve(
                    jacobian, -residual, token=jacobian_token,
                    chord=not full_newton and chord_ok,
                )
                refactor_next = False
                prev_error = math.inf
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular Jacobian: {exc}",
                report=_failure_report(
                    circuit, "newton", iterations, last_error, worst,
                    gmin, source_scale, time,
                ),
            ) from exc
        if not np.all(np.isfinite(dx)):
            if use_cached:
                # A stale factorization produced garbage — rebuild it and
                # retry this iteration instead of failing outright.
                engine.invalidate_factorization()
                _count_refactorization(engine)
                refactor_next = True
                continue
            worst = int(np.argmax(~np.isfinite(dx)))
            raise ConvergenceError(
                "non-finite Newton step",
                report=_failure_report(
                    circuit, "newton", iterations, math.inf, worst,
                    gmin, source_scale, time,
                ),
            )
        x += dx
        errors = weighted_error_vector(
            dx, x - dx, x, num_nodes,
            tolerances.reltol, tolerances.vntol, tolerances.abstol,
        )
        worst = int(np.argmax(errors))
        last_error = float(errors[worst])
        if last_error <= 1.0:
            if not return_context:
                return x
            # Hand back a context assembled at the converged point.  The
            # charge vector feeds the integrator's history, where any
            # final-iterate offset would be amplified by 1/h and ring
            # through the trapezoidal rule — so this is never skipped.
            # With bypass on, an infinite tolerance forces every device
            # onto the replay path (cached stamps extrapolated with the
            # cached Jacobians to the converged x — second-order accurate
            # in the final Newton step) and only the charge vector is
            # assembled, since the integrator's accept path reads nothing
            # else.  At bypass_tol=0 it matches the seed's post-accept
            # re-evaluation stamp for stamp.
            if eff_bypass > 0.0:
                ctx = engine.evaluate(
                    x, time=time, gmin=gmin, limits=limits,
                    source_scale=source_scale,
                    bypass_tol=math.inf, charges_only=True,
                )
            else:
                ctx = engine.evaluate(
                    x, time=time, gmin=gmin, limits=limits,
                    source_scale=source_scale,
                )
            return x, ctx
        if use_cached and last_error >= prev_error * CHORD_CONTRACTION:
            # The frozen Jacobian is no longer contracting the error —
            # refactorize at the next iteration.
            engine.invalidate_factorization()
            _count_refactorization(engine)
            refactor_next = True
        prev_error = last_error
    raise ConvergenceError(
        f"Newton failed to converge in {max_iterations} "
        "iterations",
        report=_failure_report(
            circuit, "newton", iterations, last_error, worst,
            gmin, source_scale, time,
        ),
    )


def retry_perturbation(x0: np.ndarray, attempt: int,
                       amplitude: float = 0.05) -> np.ndarray:
    """Deterministic initial-guess jitter for retry attempt ``attempt``.

    Attempt ``k`` always produces the same perturbation (the stream is
    seeded by ``k``), so a retried sweep point is reproducible.  The
    amplitude grows with the attempt number: later retries explore
    further from the failed starting point.
    """
    if attempt <= 0:
        return np.array(x0, dtype=float)
    rng = np.random.default_rng(attempt)
    return np.asarray(x0, dtype=float) + rng.normal(
        0.0, amplitude * attempt, size=np.shape(x0)
    )


def solve_dc(
    circuit: Circuit,
    x0: np.ndarray | None = None,
    tolerances: Tolerances | None = None,
    gmin: float = 1e-12,
    limits: dict | None = None,
    engine=None,
    attempt: int = 0,
    rhs_delta: np.ndarray | None = None,
) -> np.ndarray:
    """DC operating point with the full homotopy ladder.

    Returns the solution vector (node voltages then branch currents).
    On failure raises :class:`~repro.errors.ConvergenceError` carrying a
    :class:`~repro.errors.ConvergenceReport` whose ``stage`` records the
    last homotopy rung attempted and whose ``history`` lists every rung
    that failed before it.

    ``attempt`` is the retry ladder hook used by fault-tolerant sweeps
    (see :func:`repro.sweep.run_sweep`): attempt ``k > 0`` starts from a
    deterministically perturbed initial guess
    (:func:`retry_perturbation`) and walks a longer, heavier gmin
    ladder.  The converged solution is unchanged — only the path to it.

    ``rhs_delta`` re-biases the independent sources without recompiling
    (see :func:`newton_solve`); it rides through every homotopy stage,
    scaled with the sources during source stepping.
    """
    circuit.assign_indices()
    engine = resolve_engine(circuit, engine)
    if tolerances is None:
        tolerances = Tolerances()
    if x0 is None:
        x0 = np.zeros(circuit.num_unknowns)
    if limits is None:
        limits = {}
    if attempt > 0:
        x0 = retry_perturbation(x0, attempt)
    history: list[str] = []

    try:
        return newton_solve(
            circuit, x0, tolerances, gmin, limits=limits,
            engine=engine, jacobian_token=("dc",), rhs_delta=rhs_delta,
        )
    except ConvergenceError as exc:
        history.append(f"newton: {exc}")

    # gmin stepping: solve with a heavy junction shunt, then relax it.
    # Retry attempts relax harder: a higher starting shunt and more rungs.
    x = np.array(x0, dtype=float)
    try:
        step_limits: dict = {}
        start_gmin = 1e-2 * 10.0 ** min(attempt, 2)
        rungs = 11 + 4 * min(attempt, 5)
        target_gmin = gmin if gmin > 0 else 1e-12
        relax_gmins = list(np.geomspace(start_gmin, target_gmin, rungs))
        for step_gmin in relax_gmins:
            x = newton_solve(
                circuit, x, tolerances, step_gmin, limits=step_limits,
                engine=engine, rhs_delta=rhs_delta,
            )
        if relax_gmins[-1] != gmin:
            x = newton_solve(
                circuit, x, tolerances, gmin, limits=step_limits,
                engine=engine, rhs_delta=rhs_delta,
            )
        limits.update(step_limits)
        return x
    except ConvergenceError as exc:
        history.append(f"gmin stepping: {exc}")
        if exc.report is not None:
            exc.report.stage = "gmin_stepping"

    # Source stepping: ramp all independent sources from zero.
    x = np.zeros(circuit.num_unknowns)
    step_limits = {}
    scale = 0.0
    step = 0.1
    failures = 0
    while scale < 1.0:
        target = min(scale + step, 1.0)
        try:
            x = newton_solve(
                circuit, x, tolerances, gmin,
                source_scale=target, limits=step_limits, engine=engine,
                rhs_delta=rhs_delta,
            )
            scale = target
            step = min(step * 1.5, 0.25)
        except ConvergenceError as exc:
            failures += 1
            step /= 4.0
            if failures > 40 or step < 1e-6:
                history.append(f"source stepping: {exc}")
                report = replace(
                    exc.report or ConvergenceReport(),
                    stage="source_stepping",
                    history=history,
                )
                raise ConvergenceError(
                    "DC operating point: Newton, gmin stepping and source "
                    f"stepping all failed ({report.summary()})",
                    report=report,
                ) from None
    limits.update(step_limits)
    return x


def newton_solve_batched(
    circuit: Circuit,
    x0: np.ndarray,
    tolerances: Tolerances,
    gmin: float,
    source_scale: float = 1.0,
    rhs_deltas=None,
    engine=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Newton iterations over a ``(B, n)`` stack of operating points.

    Every lane runs the **same iteration protocol** as
    :func:`newton_solve` — identical assembly, identical
    :data:`DIAG_GSHUNT` regularization, identical per-backend linear
    solves (:meth:`~repro.spice.engine.LinearSolver.solve_batched_exact`
    or, for constant-Jacobian circuits, the same token-cached
    factorization the scalar path reuses), identical weighted-error
    convergence test — so a converged lane is bit-identical to a scalar
    :func:`newton_solve` on that point.  The blocking win is per-point
    convergence masking (finished lanes drop out of the Python loop) and
    a single vectorized error test per iteration instead of ``B``.

    ``rhs_deltas``, when given, is a per-lane sequence of residual
    offsets (entries may be ``None``); see :func:`newton_solve`.

    Returns ``(x, converged)``: the ``(B, n)`` solution stack and a
    boolean mask.  Lanes that hit a singular Jacobian, a non-finite step
    or the iteration budget come back unconverged with their last
    iterate — callers escalate them through the scalar homotopy ladder
    (:func:`solve_dc_batched`), which reproduces the identical failure
    trajectory and forensics.
    """
    engine = resolve_engine(circuit, engine)
    num_nodes = engine.num_nodes
    x = np.array(x0, dtype=float)
    if x.ndim != 2:
        raise ValueError("newton_solve_batched expects a (B, n) stack")
    batch, size = x.shape
    diag = np.arange(num_nodes)
    limits = [dict() for _ in range(batch)]
    converged = np.zeros(batch, dtype=bool)
    # Sparse-assembly engines keep per-lane Jacobians as flat value
    # vectors over the compiled pattern — (B, nnz) instead of (B, n, n)
    # — and solve each lane through the identical pattern-wrapped path
    # the scalar Newton uses, so lanes stay bit-identical to solve_dc.
    pattern = (
        engine.pattern
        if getattr(engine, "assembly", "dense") == "sparse"
        else None
    )
    if pattern is not None:
        jac = np.empty((batch, pattern.nnz))
        diag_pos = pattern.positions(diag, diag)
    else:
        jac = np.empty((batch, size, size))
    res = np.empty((batch, size))
    active = list(range(batch))
    # Engines whose nonlinear devices are all group-vectorized assemble
    # every active lane in one stacked pass — the same elementwise math
    # lane-by-lane, so residuals and Jacobians stay bit-identical to the
    # per-lane evaluate loop they replace.
    stacked = getattr(engine, "supports_stacked_evaluate", False)
    for _iteration in range(tolerances.max_iterations):
        if not active:
            break
        if stacked:
            idx_arr = np.array(active)
            sctx = engine.evaluate_stacked(
                x[idx_arr], gmin=gmin,
                limits_list=[limits[k] for k in active],
                source_scale=source_scale,
            )
            res[idx_arr] = sctx.i
            jac[idx_arr] = sctx.g
        else:
            for k in active:
                ctx = engine.evaluate(
                    x[k], gmin=gmin, limits=limits[k],
                    source_scale=source_scale,
                )
                np.copyto(res[k], ctx.i_vec)
                if pattern is not None:
                    np.copyto(jac[k], ctx.g_mat.values)
                else:
                    np.copyto(jac[k], ctx.g_mat)
        for k in active:
            if rhs_deltas is not None and rhs_deltas[k] is not None:
                if source_scale == 1.0:
                    res[k] += rhs_deltas[k]
                else:
                    res[k] += rhs_deltas[k] * source_scale
            if pattern is not None:
                jac[k][diag_pos] += DIAG_GSHUNT
            else:
                jac[k][diag, diag] += DIAG_GSHUNT
            res[k][:num_nodes] += DIAG_GSHUNT * x[k][:num_nodes]
        idx = np.array(active)
        if engine.has_constant_jacobian:
            # The scalar path factorizes this (lane-independent) matrix
            # once under the ("dc",) token and back-substitutes for every
            # later point; reuse the very same cached factorization.
            dx = np.empty((len(active), size))
            for j, k in enumerate(active):
                try:
                    if engine.has_factorization(("dc",)):
                        dx[j] = engine.solve_cached(-res[k])
                    else:
                        system = (pattern.matrix(jac[k])
                                  if pattern is not None else jac[k])
                        dx[j] = engine.solve(system, -res[k], token=("dc",))
                except np.linalg.LinAlgError:
                    dx[j] = np.nan
        elif pattern is not None:
            dx = np.empty((len(active), size))
            for j, k in enumerate(active):
                try:
                    dx[j] = engine.solve(pattern.matrix(jac[k]), -res[k])
                except np.linalg.LinAlgError:
                    dx[j] = np.nan
        else:
            dx = engine.solve_batched_exact(jac[idx], -res[idx])
        stepped = []
        rows = []
        for j, k in enumerate(active):
            if not np.all(np.isfinite(dx[j])):
                converged[k] = False
                continue
            x[k] += dx[j]
            stepped.append(k)
            rows.append(j)
        if not stepped:
            active = []
            break
        # Vectorized convergence masking: one weighted-error evaluation
        # over every lane that stepped, elementwise-identical to the
        # scalar test (which recomputes the pre-step iterate as x - dx).
        step = dx[rows]
        xs = x[stepped]
        scale = tolerances.reltol * np.maximum(np.abs(xs - step), np.abs(xs))
        scale[:, :num_nodes] += tolerances.vntol
        scale[:, num_nodes:] += tolerances.abstol
        worst = np.max(np.abs(step) / scale, axis=1)
        active = []
        for k, err in zip(stepped, worst):
            if err <= 1.0:
                converged[k] = True
            else:
                active.append(k)
    return x, converged


def solve_dc_batched(
    circuit: Circuit,
    rhs_deltas,
    x0: np.ndarray | None = None,
    tolerances: Tolerances | None = None,
    gmin: float = 1e-12,
    engine=None,
    attempt: int = 0,
) -> tuple[np.ndarray, list]:
    """Blocked DC operating points: one batched Newton, scalar escalation.

    ``rhs_deltas`` is a per-lane sequence of residual offsets (entries
    may be ``None``) — one operating point per lane, typically source
    re-biases from a sweep (:class:`repro.sweep.batched.BlockedDCSweep`).

    Stage 1 runs every lane through :func:`newton_solve_batched`.  Lanes
    that converge there are done — bit-identical to what scalar
    :func:`solve_dc` would have produced, because its first ladder rung
    is exactly this Newton run.  Lanes that do not are re-solved with
    scalar :func:`solve_dc`, re-living the identical Newton failure and
    then the identical gmin/source-stepping homotopies, so values,
    :class:`~repro.errors.ConvergenceError` messages and
    :class:`~repro.errors.ConvergenceReport` forensics all match the
    scalar path lane for lane.

    Returns ``(x, errors)``: the ``(B, n)`` solution stack and a
    per-lane list of ``None`` (success) or the lane's
    :class:`~repro.errors.ConvergenceError`.

    With ``attempt > 0`` (a sweep retry) the blocked stage is skipped
    outright: the retry contract is scalar ``solve_dc(attempt=k)`` with
    its perturbed guess and heavier ladder, applied per failing lane.
    """
    circuit.assign_indices()
    engine = resolve_engine(circuit, engine)
    if tolerances is None:
        tolerances = Tolerances()
    batch = len(rhs_deltas)
    size = circuit.num_unknowns
    if x0 is None:
        x0 = np.zeros(size)
    x0 = np.asarray(x0, dtype=float)
    stack = np.broadcast_to(x0, (batch, size)) if x0.ndim == 1 else x0
    errors: list = [None] * batch
    if attempt == 0:
        x, converged = newton_solve_batched(
            circuit, stack, tolerances, gmin,
            rhs_deltas=rhs_deltas, engine=engine,
        )
    else:
        x = np.array(stack, dtype=float)
        converged = np.zeros(batch, dtype=bool)
    for k in np.flatnonzero(~converged):
        try:
            x[k] = solve_dc(
                circuit, x0=np.array(x0 if x0.ndim == 1 else x0[k]),
                tolerances=tolerances, gmin=gmin, engine=engine,
                attempt=attempt, rhs_delta=rhs_deltas[k],
            )
        except ConvergenceError as exc:
            errors[k] = exc
            x[k] = np.nan
    return x, errors

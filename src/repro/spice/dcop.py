"""DC operating-point solution by Newton-Raphson with homotopies.

The solve ladder mirrors SPICE: plain Newton first, then gmin stepping
(relaxing the junction shunt conductance from 1e-2 S down to the target),
then source stepping (ramping all independent sources from zero).  Each
stage warm-starts from the best solution found so far.

Per-iteration assembly goes through an engine (see
:mod:`repro.spice.engine`): by default the circuit's cached
:class:`~repro.spice.engine.CompiledCircuit`, which stamps the linear
part once and evaluates only the nonlinear devices per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from .engine import resolve_engine
from .netlist import Circuit


def weighted_max_error(
    delta: np.ndarray,
    ref_a: np.ndarray,
    ref_b: np.ndarray,
    num_nodes: int,
    reltol: float,
    atol_nodes: float,
    atol_branches: float,
) -> float:
    """Largest |delta| in units of the per-unknown tolerance.

    The tolerance for unknown ``i`` is
    ``reltol * max(|ref_a[i]|, |ref_b[i]|) + atol``, with ``atol``
    switching from the node (voltage) to the branch (current) value at
    index ``num_nodes``.  Shared by the Newton step-size test and the
    transient local-truncation-error estimate.
    """
    scale = reltol * np.maximum(np.abs(ref_a), np.abs(ref_b))
    scale[:num_nodes] += atol_nodes
    scale[num_nodes:] += atol_branches
    return float(np.max(np.abs(delta) / scale))


@dataclass(frozen=True)
class Tolerances:
    """Newton convergence tolerances (SPICE option names)."""

    reltol: float = 1e-3
    vntol: float = 1e-6  #: absolute voltage tolerance
    abstol: float = 1e-12  #: absolute current tolerance
    max_iterations: int = 100

    def converged(self, dx: np.ndarray, x: np.ndarray, num_nodes: int) -> bool:
        """Per-unknown step-size test: voltages vs vntol, currents vs abstol."""
        return (
            weighted_max_error(
                dx, x, x + dx, num_nodes,
                self.reltol, self.vntol, self.abstol,
            )
            <= 1.0
        )


#: Small conductance stamped from every node to ground to avoid floating
#: subcircuits making the Jacobian singular.
DIAG_GSHUNT = 1e-12


def newton_solve(
    circuit: Circuit,
    x0: np.ndarray,
    tolerances: Tolerances,
    gmin: float,
    source_scale: float = 1.0,
    time: float | None = None,
    limits: dict | None = None,
    dynamic=None,
    engine=None,
    jacobian_token=None,
) -> np.ndarray:
    """Run Newton iterations on F(x) = I(x) [+ dynamic terms] until converged.

    ``dynamic``, when given, is a callable ``(ctx, F, J) -> None`` that adds
    the integration-formula terms (used by transient analysis).  ``engine``
    selects the evaluation engine (see
    :func:`repro.spice.engine.resolve_engine`); ``jacobian_token``, when
    the circuit has a constant Jacobian, lets the linear solver reuse its
    factorization across iterations and calls carrying the same token.
    Raises :class:`~repro.errors.ConvergenceError` if the iteration limit
    is hit or the Jacobian goes singular.
    """
    engine = resolve_engine(circuit, engine)
    num_nodes = engine.num_nodes
    x = np.array(x0, dtype=float)
    if limits is None:
        limits = {}
    diag = np.arange(num_nodes)
    for _ in range(tolerances.max_iterations):
        ctx = engine.evaluate(
            x, time=time, gmin=gmin, limits=limits,
            source_scale=source_scale,
        )
        # The context arrays are engine-owned buffers (or, for the legacy
        # engine, per-call allocations); either way they are free to
        # mutate — the next evaluation rebuilds them.
        residual = ctx.i_vec
        jacobian = ctx.g_mat
        if dynamic is not None:
            dynamic(ctx, residual, jacobian)
        jacobian[diag, diag] += DIAG_GSHUNT
        residual[:num_nodes] += DIAG_GSHUNT * x[:num_nodes]
        try:
            dx = engine.solve(jacobian, -residual, token=jacobian_token)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"singular Jacobian: {exc}") from exc
        if not np.all(np.isfinite(dx)):
            raise ConvergenceError("non-finite Newton step")
        x += dx
        if tolerances.converged(dx, x - dx, num_nodes):
            return x
    raise ConvergenceError(
        f"Newton failed to converge in {tolerances.max_iterations} iterations"
    )


def solve_dc(
    circuit: Circuit,
    x0: np.ndarray | None = None,
    tolerances: Tolerances | None = None,
    gmin: float = 1e-12,
    limits: dict | None = None,
    engine=None,
) -> np.ndarray:
    """DC operating point with the full homotopy ladder.

    Returns the solution vector (node voltages then branch currents).
    """
    circuit.assign_indices()
    engine = resolve_engine(circuit, engine)
    if tolerances is None:
        tolerances = Tolerances()
    if x0 is None:
        x0 = np.zeros(circuit.num_unknowns)
    if limits is None:
        limits = {}

    try:
        return newton_solve(
            circuit, x0, tolerances, gmin, limits=limits,
            engine=engine, jacobian_token=("dc",),
        )
    except ConvergenceError:
        pass

    # gmin stepping: solve with a heavy junction shunt, then relax it.
    x = np.array(x0, dtype=float)
    try:
        step_limits: dict = {}
        relax_gmins = list(np.geomspace(1e-2, gmin, 11)) if gmin > 0 else list(
            np.geomspace(1e-2, 1e-12, 11)
        )
        for step_gmin in relax_gmins:
            x = newton_solve(
                circuit, x, tolerances, step_gmin, limits=step_limits,
                engine=engine,
            )
        if relax_gmins[-1] != gmin:
            x = newton_solve(
                circuit, x, tolerances, gmin, limits=step_limits,
                engine=engine,
            )
        limits.update(step_limits)
        return x
    except ConvergenceError:
        pass

    # Source stepping: ramp all independent sources from zero.
    x = np.zeros(circuit.num_unknowns)
    step_limits = {}
    scale = 0.0
    step = 0.1
    failures = 0
    while scale < 1.0:
        target = min(scale + step, 1.0)
        try:
            x = newton_solve(
                circuit, x, tolerances, gmin,
                source_scale=target, limits=step_limits, engine=engine,
            )
            scale = target
            step = min(step * 1.5, 0.25)
        except ConvergenceError:
            failures += 1
            step /= 4.0
            if failures > 40 or step < 1e-6:
                raise ConvergenceError(
                    "DC operating point: Newton, gmin stepping and source "
                    "stepping all failed"
                ) from None
    limits.update(step_limits)
    return x

"""Recursive-descent parser for AHDL source."""

from __future__ import annotations

from ..errors import AHDLError
from ..units import parse_value
from . import ast
from .lexer import EOF, IDENT, NUMBER, Token, tokenize


def parse_source(source: str) -> list[ast.ModuleDecl]:
    """Parse AHDL source text into module declarations."""
    return _Parser(tokenize(source)).parse_modules()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def expect_punct(self, text: str) -> Token:
        token = self.advance()
        if not token.is_punct(text):
            raise AHDLError(f"expected {text!r}, got {token.text!r}", token.line)
        return token

    def expect_ident(self, keyword: str | None = None) -> Token:
        token = self.advance()
        if token.kind != IDENT:
            raise AHDLError(f"expected identifier, got {token.text!r}", token.line)
        if keyword is not None and token.text != keyword:
            raise AHDLError(
                f"expected keyword {keyword!r}, got {token.text!r}", token.line
            )
        return token

    # -- grammar --------------------------------------------------------------------

    def parse_modules(self) -> list[ast.ModuleDecl]:
        modules = []
        while self.peek().kind != EOF:
            modules.append(self.parse_module())
        if not modules:
            raise AHDLError("source contains no modules")
        return modules

    def parse_module(self) -> ast.ModuleDecl:
        start = self.expect_ident("module")
        name = self.expect_ident().text
        ports = self._ident_list_in_parens()
        parameters_order: list[str] = []
        if self.peek().is_punct("("):
            parameters_order = self._ident_list_in_parens()

        nodes: list[str] = []
        parameters: list[ast.Parameter] = []
        while True:
            token = self.peek()
            if token.is_keyword("node"):
                nodes.extend(self._parse_node_decl())
            elif token.is_keyword("parameter"):
                parameters.append(self._parse_parameter_decl())
            else:
                break

        declared = {p.name for p in parameters}
        for listed in parameters_order:
            if listed not in declared:
                raise AHDLError(
                    f"module {name}: parameter {listed!r} listed in the "
                    "header but never declared", start.line,
                )

        self.expect_punct("{")
        self.expect_ident("analog")
        self.expect_punct("{")
        statements: list[ast.Statement] = []
        while not self.peek().is_punct("}"):
            statements.append(self._parse_statement())
        self.expect_punct("}")
        self.expect_punct("}")

        module = ast.ModuleDecl(
            name=name,
            ports=tuple(ports),
            parameters=tuple(parameters),
            nodes=tuple(nodes),
            statements=tuple(statements),
            line=start.line,
        )
        self._validate(module)
        return module

    def _validate(self, module: ast.ModuleDecl) -> None:
        port_set = set(module.ports)
        if len(port_set) != len(module.ports):
            raise AHDLError(f"module {module.name}: duplicate port", module.line)
        for node in module.nodes:
            if node not in port_set:
                raise AHDLError(
                    f"module {module.name}: node {node!r} is not a port",
                    module.line,
                )
        for statement in module.statements:
            if isinstance(statement, ast.Contribution):
                if statement.port not in port_set:
                    raise AHDLError(
                        f"module {module.name}: contribution to unknown "
                        f"port {statement.port!r}", statement.line,
                    )
        if not module.output_ports():
            raise AHDLError(
                f"module {module.name}: no output contributions", module.line
            )

    def _ident_list_in_parens(self) -> list[str]:
        self.expect_punct("(")
        items: list[str] = []
        if not self.peek().is_punct(")"):
            items.append(self.expect_ident().text)
            while self.peek().is_punct(","):
                self.advance()
                items.append(self.expect_ident().text)
        self.expect_punct(")")
        return items

    def _parse_node_decl(self) -> list[str]:
        self.expect_ident("node")
        self.expect_punct("[")
        # Discipline list (V, I) — accepted and recorded as analog nodes.
        self.expect_ident()
        while self.peek().is_punct(","):
            self.advance()
            self.expect_ident()
        self.expect_punct("]")
        names = [self.expect_ident().text]
        while self.peek().is_punct(","):
            self.advance()
            names.append(self.expect_ident().text)
        self.expect_punct(";")
        return names

    def _parse_parameter_decl(self) -> ast.Parameter:
        start = self.expect_ident("parameter")
        self.expect_ident("real")
        name = self.expect_ident().text
        self.expect_punct("=")
        default = self._parse_expression()
        self.expect_punct(";")
        return ast.Parameter(name=name, default=default, line=start.line)

    def _parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.kind == IDENT and token.text == "V":
            # V(PORT) <- expr ;
            self.advance()
            self.expect_punct("(")
            port = self.expect_ident().text
            self.expect_punct(")")
            self.expect_punct("<-")
            value = self._parse_expression()
            self.expect_punct(";")
            return ast.Contribution(port=port, value=value, line=token.line)
        if token.kind == IDENT:
            name = self.advance().text
            self.expect_punct("=")
            value = self._parse_expression()
            self.expect_punct(";")
            return ast.Assign(target=name, value=value, line=token.line)
        raise AHDLError(f"expected a statement, got {token.text!r}", token.line)

    # -- expressions -------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_additive()

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.peek().is_punct("+") or self.peek().is_punct("-"):
            op = self.advance()
            right = self._parse_multiplicative()
            left = ast.Binary(op.text, left, right, line=op.line)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self.peek().is_punct("*") or self.peek().is_punct("/"):
            op = self.advance()
            right = self._parse_unary()
            left = ast.Binary(op.text, left, right, line=op.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.is_punct("-") or token.is_punct("+"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(token.text, operand, line=token.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.advance()
        if token.kind == NUMBER:
            try:
                value = parse_value(token.text)
            except Exception:
                raise AHDLError(f"bad number {token.text!r}", token.line) from None
            return ast.Number(value, line=token.line)
        if token.is_punct("("):
            inner = self._parse_expression()
            self.expect_punct(")")
            return inner
        if token.kind == IDENT:
            if token.text == "V" and self.peek().is_punct("("):
                self.advance()
                port = self.expect_ident().text
                self.expect_punct(")")
                return ast.PortAccess(port, line=token.line)
            if self.peek().is_punct("("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.peek().is_punct(")"):
                    args.append(self._parse_expression())
                    while self.peek().is_punct(","):
                        self.advance()
                        args.append(self._parse_expression())
                self.expect_punct(")")
                return ast.Call(token.text, tuple(args), line=token.line)
            return ast.Name(token.text, line=token.line)
        raise AHDLError(f"unexpected token {token.text!r}", token.line)

"""Abstract syntax tree for AHDL modules."""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class for expression nodes."""

    line: int = 0


@dataclass(frozen=True)
class Number(Expr):
    value: float
    line: int = 0


@dataclass(frozen=True)
class Name(Expr):
    """A parameter or local-variable reference."""

    ident: str
    line: int = 0


@dataclass(frozen=True)
class PortAccess(Expr):
    """``V(PORT)`` — reading the signal at a port."""

    port: str
    line: int = 0


@dataclass(frozen=True)
class Unary(Expr):
    op: str
    operand: Expr
    line: int = 0


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0


@dataclass(frozen=True)
class Call(Expr):
    function: str
    args: tuple[Expr, ...]
    line: int = 0


class Statement:
    line: int = 0


@dataclass(frozen=True)
class Assign(Statement):
    """``name = expr;`` — a local (intermediate) signal or value."""

    target: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Contribution(Statement):
    """``V(PORT) <- expr;`` — driving an output port.

    Multiple contributions to the same port accumulate (sum), following
    analog HDL contribution semantics.
    """

    port: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Parameter:
    name: str
    default: Expr
    line: int = 0


@dataclass(frozen=True)
class ModuleDecl:
    """A parsed AHDL module."""

    name: str
    ports: tuple[str, ...]
    parameters: tuple[Parameter, ...]
    nodes: tuple[str, ...]
    statements: tuple[Statement, ...]
    line: int = 0

    def output_ports(self) -> tuple[str, ...]:
        driven = [s.port for s in self.statements if isinstance(s, Contribution)]
        seen: list[str] = []
        for port in driven:
            if port not in seen:
                seen.append(port)
        return tuple(seen)

    def input_ports(self) -> tuple[str, ...]:
        outputs = set(self.output_ports())
        return tuple(p for p in self.ports if p not in outputs)

"""Canonical AHDL sources used by the examples, tests and benchmarks.

``AMP_SOURCE`` is the paper's Fig. 1 snippet fleshed out;
``IR_MIXER_SOURCE`` is the image-rejection second converter of Fig. 4 —
the module the paper's Fig. 5 sweep simulates, with the 90-degree
shifters' phase error and the path gain balance as parameters.
"""

from __future__ import annotations

from .compiler import AHDLModule, compile_module

#: The paper Fig. 1 example: a behavioral amplifier.
AMP_SOURCE = """
// Fig. 1: behavioral amplifier block
module amp (IN, OUT) (gain)
node [V, I] IN, OUT;
parameter real gain = 1;
{
  analog {
    V(OUT) <- gain * V(IN);
  }
}
"""

#: The Fig. 4 image-rejection second converter, with Fig. 5's knobs.
IR_MIXER_SOURCE = """
// Fig. 4: image rejection mixer for the double-super tuner.
// lo_freq       second local oscillator (Fdown)
// lo_phase_err  quadrature error of the VCO 90-degree splitter (deg)
// if_phase_err  error of the 2nd-IF 90-degree shifter (deg)
// gain_err      fractional gain imbalance between the two paths
module ir_mixer (IF1, IF2) (lo_freq, lo_phase_err, if_phase_err, gain_err)
node [V, I] IF1, IF2;
parameter real lo_freq = 1255MEG;
parameter real lo_phase_err = 0;
parameter real if_phase_err = 0;
parameter real gain_err = 0;
{
  analog {
    i_path = mix(V(IF1), lo_freq, 0);
    q_path = mix(V(IF1), lo_freq, 90 + lo_phase_err);
    q_shifted = phase_shift(q_path, 90 + if_phase_err) * (1 + gain_err);
    V(IF2) <- i_path + q_shifted;
  }
}
"""

#: A conventional single-path second converter (Fig. 2 style).
SIMPLE_CONVERTER_SOURCE = """
module down_converter (IF1, IF2) (lo_freq, cutoff)
node [V, I] IF1, IF2;
parameter real lo_freq = 1255MEG;
parameter real cutoff = 70MEG;
{
  analog {
    V(IF2) <- lowpass(mix(V(IF1), lo_freq, 0), cutoff);
  }
}
"""


def amp_module() -> AHDLModule:
    """Compiled Fig. 1 amplifier module."""
    return compile_module(AMP_SOURCE)


def ir_mixer_module() -> AHDLModule:
    """Compiled Fig. 4 image-rejection mixer module."""
    return compile_module(IR_MIXER_SOURCE)


def down_converter_module() -> AHDLModule:
    """Compiled conventional down-converter module."""
    return compile_module(SIMPLE_CONVERTER_SOURCE)

"""Built-in functions available inside AHDL ``analog`` blocks.

Signal-domain functions operate on
:class:`~repro.behavioral.signal.Spectrum` values; scalar functions on
floats.  The compiler resolves calls against :data:`STDLIB` at
elaboration time, so an unknown function is a compile error, not a
runtime surprise.
"""

from __future__ import annotations

import math

from ..behavioral.blocks import butterworth_response, lowpass_response
from ..behavioral.signal import Spectrum
from ..errors import AHDLError


def _require_spectrum(value, function: str) -> Spectrum:
    if not isinstance(value, Spectrum):
        raise AHDLError(
            f"{function}() expects a signal, got {type(value).__name__}"
        )
    return value


def _require_scalar(value, function: str) -> float:
    if isinstance(value, Spectrum):
        raise AHDLError(f"{function}() expects a number, got a signal")
    return float(value)


# -- signal functions ---------------------------------------------------------------


def ahdl_mix(signal, frequency, phase_deg=0.0):
    """``mix(sig, f_lo, phase)`` — multiply by ``cos(2*pi*f_lo*t+phase)``."""
    signal = _require_spectrum(signal, "mix")
    return signal.mixed(_require_scalar(frequency, "mix"),
                        _require_scalar(phase_deg, "mix"))


def ahdl_phase_shift(signal, degrees):
    """``phase_shift(sig, deg)`` — broadband constant phase shift."""
    signal = _require_spectrum(signal, "phase_shift")
    return signal.phase_shifted(_require_scalar(degrees, "phase_shift"))


def ahdl_gain_db(signal, gain_db):
    """``gain_db(sig, dB)`` — amplitude gain in decibels."""
    signal = _require_spectrum(signal, "gain_db")
    return signal.gained_db(_require_scalar(gain_db, "gain_db"))


def ahdl_bandpass(signal, center, bandwidth, order=3.0):
    """``bandpass(sig, f0, bw[, order])`` — Butterworth band-pass."""
    signal = _require_spectrum(signal, "bandpass")
    response = butterworth_response(
        _require_scalar(center, "bandpass"),
        _require_scalar(bandwidth, "bandpass"),
        int(_require_scalar(order, "bandpass")),
    )
    return signal.filtered(response)


def ahdl_lowpass(signal, cutoff, order=3.0):
    """``lowpass(sig, fc[, order])`` — Butterworth low-pass."""
    signal = _require_spectrum(signal, "lowpass")
    response = lowpass_response(
        _require_scalar(cutoff, "lowpass"),
        int(_require_scalar(order, "lowpass")),
    )
    return signal.filtered(response)


def ahdl_tone(frequency, amplitude=1.0, phase_deg=0.0):
    """``tone(f, a, phase)`` — construct a sinusoidal source signal."""
    return Spectrum.tone(
        _require_scalar(frequency, "tone"),
        _require_scalar(amplitude, "tone"),
        _require_scalar(phase_deg, "tone"),
    )


def ahdl_amplitude(signal, frequency):
    """``amplitude(sig, f)`` — tone amplitude (a scalar)."""
    signal = _require_spectrum(signal, "amplitude")
    return signal.amplitude(_require_scalar(frequency, "amplitude"))


# -- scalar functions ----------------------------------------------------------------


def _scalar_fn(fn, name):
    def wrapped(value):
        return fn(_require_scalar(value, name))

    wrapped.__name__ = name
    wrapped.__doc__ = f"``{name}(x)`` — scalar {name}."
    return wrapped


def ahdl_db(value):
    """``db(x)`` — 20*log10(x) of a scalar amplitude ratio."""
    x = _require_scalar(value, "db")
    if x <= 0:
        raise AHDLError("db() of a non-positive value")
    return 20.0 * math.log10(x)


def ahdl_pow(base, exponent):
    """``pow(x, y)`` — scalar power."""
    return math.pow(_require_scalar(base, "pow"),
                    _require_scalar(exponent, "pow"))


#: name -> (callable, min_args, max_args)
STDLIB: dict[str, tuple] = {
    "mix": (ahdl_mix, 2, 3),
    "phase_shift": (ahdl_phase_shift, 2, 2),
    "gain_db": (ahdl_gain_db, 2, 2),
    "bandpass": (ahdl_bandpass, 3, 4),
    "lowpass": (ahdl_lowpass, 2, 3),
    "tone": (ahdl_tone, 1, 3),
    "amplitude": (ahdl_amplitude, 2, 2),
    "db": (ahdl_db, 1, 1),
    "pow": (ahdl_pow, 2, 2),
    "sqrt": (_scalar_fn(math.sqrt, "sqrt"), 1, 1),
    "exp": (_scalar_fn(math.exp, "exp"), 1, 1),
    "log10": (_scalar_fn(math.log10, "log10"), 1, 1),
    "sin": (_scalar_fn(math.sin, "sin"), 1, 1),
    "cos": (_scalar_fn(math.cos, "cos"), 1, 1),
    "abs": (_scalar_fn(abs, "abs"), 1, 1),
}

"""Tokenizer for the AHDL source language.

The language follows the fragment shown in the paper's Fig. 1::

    module amp (IN, OUT) (gain)
    node [V, I] IN, OUT;
    parameter real gain = 1;
    {
      analog {
        V(OUT) <- gain * V(IN);
      }
    }

Tokens: identifiers/keywords, engineering-notation numbers (``1.255G``,
``45MEG``), punctuation, the contribution operator ``<-``, and ``//`` or
``/* */`` comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import AHDLError

KEYWORDS = frozenset({"module", "node", "parameter", "real", "analog"})

#: token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
PUNCT = "PUNCT"
EOF = "EOF"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<number>(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?[a-zA-Z]*)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<contrib><-)
  | (?P<punct>[()\[\]{},;=+\-*/<>])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int

    def is_punct(self, text: str) -> bool:
        return self.kind == PUNCT and self.text == text

    def is_keyword(self, word: str) -> bool:
        return self.kind == IDENT and self.text == word


def tokenize(source: str) -> list[Token]:
    """Tokenize AHDL source; raises :class:`AHDLError` on bad input."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise AHDLError(f"unexpected character {source[pos]!r}", line)
        text = match.group(0)
        if match.lastgroup in ("ws", "line_comment", "block_comment"):
            line += text.count("\n")
        elif match.lastgroup == "number":
            tokens.append(Token(NUMBER, text, line))
        elif match.lastgroup == "ident":
            tokens.append(Token(IDENT, text, line))
        elif match.lastgroup == "contrib":
            tokens.append(Token(PUNCT, "<-", line))
        else:
            tokens.append(Token(PUNCT, text, line))
        pos = match.end()
    tokens.append(Token(EOF, "", line))
    return tokens

"""AHDL compiler: module declarations to executable behavioral blocks.

An :class:`AHDLModule` wraps a parsed declaration; ``instantiate``
produces a :class:`~repro.behavioral.blocks.FunctionBlock` with the
module's parameters bound (defaults overridable per instance, exactly
like the ``parameter real gain = 1`` of the paper's Fig. 1 snippet).
Instances drop into a :class:`~repro.behavioral.SystemModel` next to
hand-written blocks — the top-down flow's behavioral level.
"""

from __future__ import annotations

from ..behavioral.blocks import FunctionBlock
from ..behavioral.signal import Spectrum
from ..errors import AHDLError
from . import ast
from .parser import parse_source
from .stdlib import STDLIB


class AHDLModule:
    """A compiled AHDL module: a behavioral block factory.

    ``submodules`` holds earlier-compiled modules of the same source
    that this module may instantiate by calling them like functions —
    hierarchical behavioral description (see :meth:`_call_submodule`).
    """

    def __init__(self, declaration: ast.ModuleDecl,
                 submodules: dict[str, "AHDLModule"] | None = None):
        self.declaration = declaration
        self.name = declaration.name
        self.inputs = declaration.input_ports()
        self.outputs = declaration.output_ports()
        self.submodules = dict(submodules or {})
        self._check_statically()
        self.defaults = {
            p.name: _evaluate(p.default, {}, {})
            for p in declaration.parameters
        }

    def _check_statically(self) -> None:
        """Resolve every call against the stdlib; catch bad arity early."""
        parameters = {p.name for p in self.declaration.parameters}
        locals_seen: set[str] = set()
        for statement in self.declaration.statements:
            expr = statement.value
            _check_expr(expr, parameters | locals_seen,
                        set(self.declaration.ports), self.submodules)
            if isinstance(statement, ast.Assign):
                locals_seen.add(statement.target)

    # -- elaboration ----------------------------------------------------------------

    def instantiate(self, instance_name: str | None = None,
                    **parameter_overrides) -> FunctionBlock:
        """Create a block instance with bound parameter values."""
        unknown = set(parameter_overrides) - set(self.defaults)
        if unknown:
            raise AHDLError(
                f"module {self.name}: unknown parameter(s) {sorted(unknown)}"
            )
        parameters = {**self.defaults, **parameter_overrides}
        declaration = self.declaration
        outputs = self.outputs
        submodules = self.submodules

        def process(inputs: dict[str, Spectrum]) -> dict[str, Spectrum]:
            env: dict[str, object] = dict(parameters)
            ports: dict[str, Spectrum] = {
                port: inputs.get(port, Spectrum.silence())
                for port in declaration.ports
            }
            contributions: dict[str, Spectrum] = {
                port: Spectrum.silence() for port in outputs
            }
            for statement in declaration.statements:
                value = _evaluate(statement.value, env, ports, submodules)
                if isinstance(statement, ast.Assign):
                    env[statement.target] = value
                else:
                    if not isinstance(value, Spectrum):
                        raise AHDLError(
                            f"module {declaration.name}: contribution to "
                            f"V({statement.port}) is not a signal",
                            statement.line,
                        )
                    contributions[statement.port] = (
                        contributions[statement.port] + value
                    )
            return contributions

        return FunctionBlock(
            instance_name or self.name, self.inputs, outputs, process
        )

    def __call__(self, **parameter_overrides) -> FunctionBlock:
        return self.instantiate(**parameter_overrides)

    # -- hierarchical use -------------------------------------------------------

    def apply(self, signal: Spectrum, *parameter_values) -> Spectrum:
        """Run the module as a function: one input signal in, one out.

        Positional ``parameter_values`` follow the declaration order of
        the module's parameters; omitted ones keep their defaults.  Only
        single-input/single-output modules are callable this way.
        """
        if len(self.inputs) != 1 or len(self.outputs) != 1:
            raise AHDLError(
                f"module {self.name!r} is not callable as a function "
                f"({len(self.inputs)} inputs, {len(self.outputs)} outputs)"
            )
        names = [p.name for p in self.declaration.parameters]
        if len(parameter_values) > len(names):
            raise AHDLError(
                f"module {self.name!r} takes at most {len(names)} "
                f"parameters, got {len(parameter_values)}"
            )
        overrides = dict(zip(names, parameter_values))
        block = self.instantiate(f"{self.name}#call", **overrides)
        return block.process({self.inputs[0]: signal})[self.outputs[0]]


def compile_source(source: str) -> dict[str, AHDLModule]:
    """Compile AHDL source text into modules keyed by name.

    Later modules may instantiate earlier ones by calling them like
    functions (``amp(V(IN), 4)``) — textual order defines visibility, so
    recursion is impossible by construction.
    """
    modules: dict[str, AHDLModule] = {}
    for declaration in parse_source(source):
        if declaration.name in modules:
            raise AHDLError(f"duplicate module {declaration.name!r}",
                            declaration.line)
        if declaration.name in STDLIB:
            raise AHDLError(
                f"module name {declaration.name!r} collides with a "
                "built-in function", declaration.line,
            )
        modules[declaration.name] = AHDLModule(declaration,
                                               submodules=modules)
    return modules


def compile_module(source: str) -> AHDLModule:
    """Compile source expected to contain exactly one module."""
    modules = compile_source(source)
    if len(modules) != 1:
        raise AHDLError(
            f"expected exactly one module, found {sorted(modules)}"
        )
    return next(iter(modules.values()))


# -- expression evaluation ----------------------------------------------------------


def _check_expr(expr: ast.Expr, names: set[str], ports: set[str],
                submodules: dict | None = None) -> None:
    submodules = submodules or {}
    if isinstance(expr, ast.Number):
        return
    if isinstance(expr, ast.Name):
        if expr.ident not in names:
            raise AHDLError(f"unknown name {expr.ident!r}", expr.line)
        return
    if isinstance(expr, ast.PortAccess):
        if expr.port not in ports:
            raise AHDLError(f"unknown port {expr.port!r}", expr.line)
        return
    if isinstance(expr, ast.Unary):
        _check_expr(expr.operand, names, ports, submodules)
        return
    if isinstance(expr, ast.Binary):
        _check_expr(expr.left, names, ports, submodules)
        _check_expr(expr.right, names, ports, submodules)
        return
    if isinstance(expr, ast.Call):
        submodule = submodules.get(expr.function)
        if submodule is not None:
            if (len(submodule.inputs) != 1
                    or len(submodule.outputs) != 1):
                raise AHDLError(
                    f"module {expr.function!r} is not callable (needs "
                    "exactly one input and one output)", expr.line,
                )
            max_args = 1 + len(submodule.declaration.parameters)
            if not 1 <= len(expr.args) <= max_args:
                raise AHDLError(
                    f"{expr.function}() takes 1..{max_args} args, "
                    f"got {len(expr.args)}", expr.line,
                )
        else:
            entry = STDLIB.get(expr.function)
            if entry is None:
                raise AHDLError(f"unknown function {expr.function!r}()",
                                expr.line)
            _, min_args, max_args = entry
            if not min_args <= len(expr.args) <= max_args:
                raise AHDLError(
                    f"{expr.function}() takes {min_args}..{max_args} args, "
                    f"got {len(expr.args)}", expr.line,
                )
        for arg in expr.args:
            _check_expr(arg, names, ports, submodules)
        return
    raise AHDLError(f"unhandled expression node {type(expr).__name__}")


def _evaluate(expr: ast.Expr, env: dict, ports: dict,
              submodules: dict | None = None):
    submodules = submodules or {}
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Name):
        try:
            return env[expr.ident]
        except KeyError:
            raise AHDLError(f"unbound name {expr.ident!r}", expr.line) from None
    if isinstance(expr, ast.PortAccess):
        try:
            return ports[expr.port]
        except KeyError:
            raise AHDLError(f"unbound port {expr.port!r}", expr.line) from None
    if isinstance(expr, ast.Unary):
        value = _evaluate(expr.operand, env, ports, submodules)
        if expr.op == "-":
            return value.scaled(-1.0) if isinstance(value, Spectrum) else -value
        return value
    if isinstance(expr, ast.Binary):
        left = _evaluate(expr.left, env, ports, submodules)
        right = _evaluate(expr.right, env, ports, submodules)
        return _binary(expr.op, left, right, expr.line)
    if isinstance(expr, ast.Call):
        args = [_evaluate(arg, env, ports, submodules)
                for arg in expr.args]
        submodule = submodules.get(expr.function)
        if submodule is not None:
            signal = args[0]
            if not isinstance(signal, Spectrum):
                raise AHDLError(
                    f"{expr.function}(): first argument must be a signal",
                    expr.line,
                )
            return submodule.apply(signal, *args[1:])
        function = STDLIB[expr.function][0]
        return function(*args)
    raise AHDLError(f"unhandled expression node {type(expr).__name__}")


def _binary(op: str, left, right, line: int):
    left_sig = isinstance(left, Spectrum)
    right_sig = isinstance(right, Spectrum)
    if op == "+":
        if left_sig and right_sig:
            return left + right
        if not left_sig and not right_sig:
            return left + right
        raise AHDLError("cannot add a signal and a number", line)
    if op == "-":
        if left_sig and right_sig:
            return left - right
        if not left_sig and not right_sig:
            return left - right
        raise AHDLError("cannot subtract a signal and a number", line)
    if op == "*":
        if left_sig and right_sig:
            raise AHDLError(
                "signal*signal products are not supported; use mix() for "
                "frequency translation", line,
            )
        if left_sig:
            return left.scaled(right)
        if right_sig:
            return right.scaled(left)
        return left * right
    if op == "/":
        if right_sig:
            raise AHDLError("cannot divide by a signal", line)
        if right == 0:
            raise AHDLError("division by zero", line)
        if left_sig:
            return left.scaled(1.0 / right)
        return left / right
    raise AHDLError(f"unknown operator {op!r}", line)

"""Analog hardware description language (AHDL) — lexer, parser, compiler.

The paper's Section 2 proposes describing analog function blocks in an
AHDL and simulating whole ICs at the behavioral level.  This package
implements the language of the paper's Fig. 1 snippet: modules with
ports, real parameters and an ``analog`` body of signal contributions,
compiled to :mod:`repro.behavioral` blocks.
"""

from .lexer import Token, tokenize
from .parser import parse_source
from .compiler import AHDLModule, compile_module, compile_source
from .stdlib import STDLIB
from .library import (
    AMP_SOURCE,
    IR_MIXER_SOURCE,
    SIMPLE_CONVERTER_SOURCE,
    amp_module,
    down_converter_module,
    ir_mixer_module,
)

__all__ = [
    "tokenize",
    "Token",
    "parse_source",
    "AHDLModule",
    "compile_module",
    "compile_source",
    "STDLIB",
    "AMP_SOURCE",
    "IR_MIXER_SOURCE",
    "SIMPLE_CONVERTER_SOURCE",
    "amp_module",
    "ir_mixer_module",
    "down_converter_module",
]

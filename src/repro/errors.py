"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch one base class at the API boundary while tests can assert on the
specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class UnitError(ReproError, ValueError):
    """A quantity string could not be parsed as an engineering value."""


class NetlistError(ReproError):
    """A circuit description is structurally invalid."""


class ParseError(ReproError):
    """A textual input (SPICE deck or AHDL source) failed to parse.

    Carries the line number when it is known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge."""


class AnalysisError(ReproError):
    """An analysis was requested with invalid or inconsistent arguments."""


class ModelError(ReproError):
    """A device model parameter set is invalid or incomplete."""


class GeometryError(ReproError):
    """A transistor shape or layout computation is invalid."""


class ExtractionError(ReproError):
    """Parameter extraction from measured data failed."""


class CellDatabaseError(ReproError):
    """A cell-database operation failed (missing cell, bad registration...)."""


class DesignError(ReproError):
    """A top-down design flow operation is invalid."""


class AHDLError(ParseError):
    """An AHDL source failed to compile or elaborate."""

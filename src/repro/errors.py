"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch one base class at the API boundary while tests can assert on the
specific failure mode.

:class:`ConvergenceError` additionally carries a structured
:class:`ConvergenceReport` — the solver's forensics record (homotopy
stage reached, iterations used, final weighted residual, worst unknown)
— so batch layers like :mod:`repro.sweep` can surface *why* a point
failed without parsing message strings.  Both are plain-data and
picklable: they cross process-pool boundaries intact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class ConvergenceReport:
    """Structured diagnosis of a failed nonlinear or transient solve.

    Populated by :func:`repro.spice.dcop.newton_solve` and enriched by
    the callers that drive it (:func:`~repro.spice.dcop.solve_dc` sets
    the homotopy ``stage``; transient analysis sets ``time``).  All
    fields are primitives so the report pickles across process pools.
    """

    #: Where the solve gave up: ``"newton"``, ``"gmin_stepping"``,
    #: ``"source_stepping"`` or ``"transient"``.
    stage: str = "newton"
    #: Newton iterations spent in the failing stage.
    iterations: int = 0
    #: Final weighted step error (units of the per-unknown tolerance;
    #: convergence requires <= 1).  NaN when no step was taken.
    residual: float = math.nan
    #: Index of the worst unknown at the last iteration (-1 if unknown).
    worst_index: int = -1
    #: Human name of the worst unknown, e.g. ``"V(out)"`` / ``"I(L1)"``.
    worst_name: str = ""
    #: Junction shunt conductance in effect when the solve failed.
    gmin: float | None = None
    #: Source-stepping scale factor in effect (1.0 = full sources).
    source_scale: float | None = None
    #: Transient time point being attempted, if any.
    time: float | None = None
    #: Stage-by-stage trail for multi-stage solves (message strings).
    history: list = field(default_factory=list)

    def summary(self) -> str:
        parts = [f"stage={self.stage}", f"iterations={self.iterations}"]
        if not math.isnan(self.residual):
            parts.append(f"residual={self.residual:.3g}x tol")
        if self.worst_name:
            parts.append(f"worst={self.worst_name}")
        if self.gmin is not None:
            parts.append(f"gmin={self.gmin:.3g}")
        if self.source_scale is not None:
            parts.append(f"source_scale={self.source_scale:.3g}")
        if self.time is not None:
            parts.append(f"t={self.time:.6g}s")
        return ", ".join(parts)


class ReproError(Exception):
    """Base class for every error raised by this package."""


class UnitError(ReproError, ValueError):
    """A quantity string could not be parsed as an engineering value."""


class NetlistError(ReproError):
    """A circuit description is structurally invalid."""


class ParseError(ReproError):
    """A textual input (SPICE deck or AHDL source) failed to parse.

    Carries the line number when it is known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge.

    ``report``, when present, is the solver's structured
    :class:`ConvergenceReport`.  The custom :meth:`__reduce__` keeps the
    report attached through pickling (process-pool workers re-raise
    these in the parent).
    """

    def __init__(self, message: str = "",
                 report: ConvergenceReport | None = None):
        super().__init__(message)
        self.report = report

    def __reduce__(self):
        message = self.args[0] if self.args else ""
        return (type(self), (message, self.report))


class AnalysisError(ReproError):
    """An analysis was requested with invalid or inconsistent arguments."""


class ConnectivityError(AnalysisError):
    """A circuit failed the pre-simulation connectivity lint.

    Raised before any matrix is assembled when the topology guarantees a
    meaningless solve: floating nodes, nodes with no DC path to ground,
    or ungrounded islands.  ``issues`` carries the structured
    :class:`repro.spice.lint.LintIssue` records so callers (and tests)
    can inspect the diagnosis without parsing the message.
    """

    def __init__(self, message: str = "", issues=()):
        super().__init__(message)
        self.issues = tuple(issues)

    def __reduce__(self):
        message = self.args[0] if self.args else ""
        return (type(self), (message, self.issues))


class SweepError(AnalysisError):
    """A sweep/batch execution request is invalid (bad worker count,
    unknown executor backend, unbatchable evaluation function...).

    Subclasses :class:`AnalysisError` so existing callers that catch the
    broader class keep working.
    """


class ModelError(ReproError):
    """A device model parameter set is invalid or incomplete."""


class GeometryError(ReproError):
    """A transistor shape or layout computation is invalid."""


class ExtractionError(ReproError):
    """Parameter extraction from measured data failed."""


class CellDatabaseError(ReproError):
    """A cell-database operation failed (missing cell, bad registration...)."""


class DesignError(ReproError):
    """A top-down design flow operation is invalid."""


class AHDLError(ParseError):
    """An AHDL source failed to compile or elaborate."""

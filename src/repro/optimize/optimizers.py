"""Deterministic derivative-free optimizers on the sweep engine.

Three searches, chosen for the shapes analog sizing problems take:

* :func:`coordinate_search` — pattern search along one axis at a time
  with step shrinking; robust on noisy, cheap objectives,
* :func:`nelder_mead` — the downhill simplex; fast local polish on
  smooth objectives,
* :func:`differential_evolution` — population-based global search;
  the workhorse for multimodal sizing landscapes.

All three share the evaluation backend: every batch of candidate
points fans out through :func:`repro.sweep.run_sweep`, which brings

* **parallelism** — ``executor=``/``jobs=`` run candidates on thread or
  process pools, with the engine's guarantee that results are
  bit-identical to a serial run (chunking and seeding are independent
  of scheduling),
* **caching** — a :class:`~repro.sweep.ResultCache` serves revisited
  points (pattern searches and DE's survivors revisit constantly)
  without re-simulation,
* **fault tolerance** — candidates are evaluated under
  ``on_error="skip"``: a :class:`~repro.errors.ConvergenceError` (or
  any solver failure) costs that candidate a ``failure_penalty``
  instead of killing the run,
* **determinism** — all randomness is drawn parent-side from
  ``SeedSequence(seed)``; stochastic objectives receive per-candidate
  :class:`~numpy.random.SeedSequence` children keyed to the evaluation
  index, so a fixed seed gives bit-identical results on every executor.

Objectives are ``fn(params: dict) -> float`` (minimized).  Stochastic
objectives declare an ``rng`` keyword and are handed a per-evaluation
generator.  Build spec-driven objectives with :func:`spec_objective`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError, DesignError
from ..sweep import SweepPoint, run_sweep
from ..sweep.orchestrator import _accepts_keyword, _evaluation_tag

#: Objective value charged to a candidate whose evaluation failed.
DEFAULT_FAILURE_PENALTY = 1e12


@dataclass(frozen=True)
class Parameter:
    """One search dimension: bounds, optional log scaling, initial value.

    ``log=True`` searches the exponent uniformly between the bounds'
    logs — the right metric for currents and resistances spanning
    decades.
    """

    name: str
    lower: float
    upper: float
    initial: float | None = None
    log: bool = False

    def __post_init__(self):
        if not self.name:
            raise DesignError("parameter needs a name")
        if not (math.isfinite(self.lower) and math.isfinite(self.upper)):
            raise DesignError(f"parameter {self.name!r}: bounds must be finite")
        if self.lower >= self.upper:
            raise DesignError(
                f"parameter {self.name!r}: lower bound {self.lower:g} must "
                f"be below upper bound {self.upper:g}"
            )
        if self.log and self.lower <= 0:
            raise DesignError(
                f"parameter {self.name!r}: log scaling needs positive bounds"
            )
        if self.initial is not None and not (
            self.lower <= self.initial <= self.upper
        ):
            raise DesignError(
                f"parameter {self.name!r}: initial {self.initial:g} outside "
                f"[{self.lower:g}, {self.upper:g}]"
            )

    # -- the internal unit-cube coordinate system -----------------------------------
    #
    # Optimizers work in [0, 1] per axis; encode/decode map to physical
    # values (through log space when requested).  Keeping the search in
    # the unit cube makes steps comparable across axes.

    def decode(self, u: float) -> float:
        """Unit-cube coordinate -> physical value (clipped into bounds)."""
        u = min(1.0, max(0.0, float(u)))
        if self.log:
            lo, hi = math.log(self.lower), math.log(self.upper)
            return math.exp(lo + u * (hi - lo))
        return self.lower + u * (self.upper - self.lower)

    def encode(self, value: float) -> float:
        """Physical value -> unit-cube coordinate."""
        if self.log:
            lo, hi = math.log(self.lower), math.log(self.upper)
            return (math.log(min(self.upper, max(self.lower, value))) - lo) / (hi - lo)
        return (min(self.upper, max(self.lower, value)) - self.lower) / (
            self.upper - self.lower
        )

    def initial_unit(self) -> float:
        """Starting coordinate: encoded ``initial`` or the cube centre."""
        if self.initial is None:
            return 0.5
        return self.encode(self.initial)


@dataclass
class OptimizeResult:
    """Outcome of one optimization run."""

    method: str
    best_params: dict  #: physical parameter values of the best candidate
    best_value: float  #: objective at the best candidate
    evaluations: int = 0  #: objective evaluations actually run
    cache_hits: int = 0  #: evaluations served from the result cache
    failed_evaluations: int = 0  #: candidates charged the failure penalty
    iterations: int = 0  #: optimizer iterations / generations
    converged: bool = False  #: tolerance reached before the budget ran out
    history: list = field(default_factory=list)  #: best value per iteration

    def summary(self) -> str:
        status = "converged" if self.converged else "budget exhausted"
        params = ", ".join(f"{k}={v:.6g}"
                           for k, v in self.best_params.items())
        text = (f"{self.method}: best {self.best_value:.6g} at [{params}] "
                f"after {self.iterations} iteration(s), "
                f"{self.evaluations} evaluation(s) ({status})")
        if self.cache_hits:
            text += f", {self.cache_hits} cache hit(s)"
        if self.failed_evaluations:
            text += f", {self.failed_evaluations} failed candidate(s)"
        return text


def spec_objective(specs, measure, extra_cost=None):
    """Build a minimizable objective from a spec set and a measurer.

    ``measure(params) -> {name: value}`` produces the measurements the
    :class:`~repro.optimize.spec.SpecSet` scores; ``extra_cost(params,
    measurements) -> float`` (optional) adds a secondary objective —
    typically power or area — that breaks ties once all specs are met.
    The returned callable is pickle-friendly as long as ``measure`` and
    ``extra_cost`` are (module-level functions or partials), so it fans
    out through the process executor.
    """
    return _SpecObjective(specs, measure, extra_cost)


class _SpecObjective:
    """Picklable spec-penalty objective (see :func:`spec_objective`)."""

    def __init__(self, specs, measure, extra_cost=None):
        self.specs = specs
        self.measure = measure
        self.extra_cost = extra_cost

    def __call__(self, params: dict) -> float:
        measurements = self.measure(params)
        value = self.specs.penalty(measurements)
        if self.extra_cost is not None:
            value += self.extra_cost(params, measurements)
        return value


class _BatchEvaluator:
    """Evaluates candidate batches through the sweep engine.

    Candidates are unit-cube vectors; the evaluator decodes them to
    physical parameter dicts, dispatches one :func:`run_sweep` per
    batch (``on_error="skip"``), charges failures the penalty, and
    accumulates counters.  For stochastic objectives (``fn`` accepts
    ``rng``) each evaluation receives its own ``SeedSequence`` child,
    spawned in submission order from a dedicated root — executor
    scheduling cannot perturb the streams.
    """

    def __init__(self, fn, parameters, *, executor=None, jobs=None,
                 cache=None, cache_tag=None,
                 failure_penalty=DEFAULT_FAILURE_PENALTY,
                 eval_seed_root=None, batch="auto"):
        self.fn = fn
        self.parameters = tuple(parameters)
        if not self.parameters:
            raise DesignError("optimization needs at least one parameter")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise DesignError(f"duplicate parameter names in {names}")
        self.executor = executor
        self.jobs = jobs
        self.batch = batch
        self.cache = cache
        self.cache_tag = cache_tag
        if cache is not None and cache_tag is None:
            # Resolve the tag once up front so an unhashable callable
            # fails fast, not on the first batch.
            self.cache_tag = _evaluation_tag(fn, require_code=True)
        self.failure_penalty = float(failure_penalty)
        self.stochastic = _accepts_keyword(fn, "rng")
        self._seed_root = eval_seed_root
        self.evaluations = 0
        self.cache_hits = 0
        self.failures = 0

    def decode(self, vector) -> dict:
        """Unit-cube vector -> physical parameter dict."""
        return {p.name: p.decode(u)
                for p, u in zip(self.parameters, vector)}

    def __call__(self, vectors) -> np.ndarray:
        """Evaluate a batch of unit-cube vectors; returns their values."""
        points = []
        for i, vector in enumerate(vectors):
            seed = None
            if self.stochastic:
                if self._seed_root is None:
                    raise AnalysisError(
                        "stochastic objective (accepts rng=) needs the "
                        "optimizer's seed; use differential_evolution or "
                        "pass eval_seed_root"
                    )
                (seed,) = self._seed_root.spawn(1)
            points.append(SweepPoint(index=i, params=self.decode(vector),
                                     seed=seed))
        result = run_sweep(
            self.fn, points,
            executor=self.executor, jobs=self.jobs,
            cache=self.cache, cache_tag=self.cache_tag,
            on_error="skip", batch=self.batch,
        )
        self.evaluations += result.stats.evaluated
        self.cache_hits += result.stats.cache_hits
        self.failures += len(result.failures)
        failed = set(result.failed_indices())
        values = np.empty(len(points))
        for i, value in enumerate(result.values):
            if i in failed or value is None:
                values[i] = self.failure_penalty
            else:
                values[i] = float(value)
        return values


def _finish(method, evaluator, best_vector, best_value, iterations,
            converged, history) -> OptimizeResult:
    return OptimizeResult(
        method=method,
        best_params=evaluator.decode(best_vector),
        best_value=float(best_value),
        evaluations=evaluator.evaluations,
        cache_hits=evaluator.cache_hits,
        failed_evaluations=evaluator.failures,
        iterations=iterations,
        converged=converged,
        history=history,
    )


def coordinate_search(
    fn,
    parameters,
    *,
    initial_step: float = 0.25,
    shrink: float = 0.5,
    tol: float = 1e-3,
    max_iterations: int = 60,
    executor=None,
    jobs: int | None = None,
    cache=None,
    cache_tag: str | None = None,
    failure_penalty: float = DEFAULT_FAILURE_PENALTY,
    batch: bool | str = "auto",
) -> OptimizeResult:
    """Deterministic compass/coordinate pattern search.

    From the initial point, probe ``+/- step`` along every axis (one
    batched sweep per iteration — the probes parallelize); move to the
    best improving probe, or shrink the step by ``shrink`` when none
    improves.  Stops when the step drops below ``tol`` (in unit-cube
    units) or the iteration budget runs out.  Entirely deterministic —
    no randomness at all.
    """
    if not (0.0 < shrink < 1.0):
        raise DesignError("shrink factor must be in (0, 1)")
    if initial_step <= 0:
        raise DesignError("initial_step must be positive")
    evaluator = _BatchEvaluator(
        fn, parameters, executor=executor, jobs=jobs, cache=cache,
        cache_tag=cache_tag, failure_penalty=failure_penalty, batch=batch,
    )
    dims = len(evaluator.parameters)
    current = np.array([p.initial_unit() for p in evaluator.parameters])
    current_value = float(evaluator([current])[0])
    step = float(initial_step)
    history = [current_value]
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        probes = []
        for axis in range(dims):
            for direction in (+1.0, -1.0):
                probe = current.copy()
                probe[axis] = min(1.0, max(0.0,
                                           probe[axis] + direction * step))
                probes.append(probe)
        values = evaluator(probes)
        best = int(np.argmin(values))
        if values[best] < current_value:
            current = probes[best]
            current_value = float(values[best])
        else:
            step *= shrink
        history.append(current_value)
        if step < tol:
            converged = True
            break
    return _finish("coordinate_search", evaluator, current, current_value,
                   iterations, converged, history)


def nelder_mead(
    fn,
    parameters,
    *,
    initial_spread: float = 0.15,
    tol: float = 1e-6,
    max_iterations: int = 200,
    executor=None,
    jobs: int | None = None,
    cache=None,
    cache_tag: str | None = None,
    failure_penalty: float = DEFAULT_FAILURE_PENALTY,
    batch: bool | str = "auto",
) -> OptimizeResult:
    """Downhill simplex (Nelder-Mead) within the parameter box.

    Standard reflection/expansion/contraction/shrink with coefficients
    (1, 2, 0.5, 0.5); simplex vertices are clipped into the unit cube.
    The initial simplex spans ``initial_spread`` of each axis around the
    initial point.  Converges when the simplex's value spread falls
    below ``tol``.  Deterministic.
    """
    if initial_spread <= 0:
        raise DesignError("initial_spread must be positive")
    evaluator = _BatchEvaluator(
        fn, parameters, executor=executor, jobs=jobs, cache=cache,
        cache_tag=cache_tag, failure_penalty=failure_penalty, batch=batch,
    )
    dims = len(evaluator.parameters)
    base = np.array([p.initial_unit() for p in evaluator.parameters])
    simplex = [base]
    for axis in range(dims):
        vertex = base.copy()
        nudge = initial_spread if vertex[axis] + initial_spread <= 1.0 \
            else -initial_spread
        vertex[axis] = min(1.0, max(0.0, vertex[axis] + nudge))
        simplex.append(vertex)
    simplex = np.array(simplex)
    values = evaluator(list(simplex))

    history = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        order = np.argsort(values, kind="stable")
        simplex = simplex[order]
        values = values[order]
        history.append(float(values[0]))
        if float(values[-1] - values[0]) <= tol:
            converged = True
            break
        centroid = simplex[:-1].mean(axis=0)
        worst = simplex[-1]

        def clipped(point):
            return np.clip(point, 0.0, 1.0)

        reflected = clipped(centroid + (centroid - worst))
        reflected_value = float(evaluator([reflected])[0])
        if reflected_value < values[0]:
            expanded = clipped(centroid + 2.0 * (centroid - worst))
            expanded_value = float(evaluator([expanded])[0])
            if expanded_value < reflected_value:
                simplex[-1], values[-1] = expanded, expanded_value
            else:
                simplex[-1], values[-1] = reflected, reflected_value
        elif reflected_value < values[-2]:
            simplex[-1], values[-1] = reflected, reflected_value
        else:
            contracted = clipped(centroid + 0.5 * (worst - centroid))
            contracted_value = float(evaluator([contracted])[0])
            if contracted_value < values[-1]:
                simplex[-1], values[-1] = contracted, contracted_value
            else:
                # Shrink every non-best vertex toward the best (batched).
                shrunk = [clipped(simplex[0] + 0.5 * (v - simplex[0]))
                          for v in simplex[1:]]
                shrunk_values = evaluator(shrunk)
                simplex[1:] = shrunk
                values[1:] = shrunk_values
    best = int(np.argmin(values))
    return _finish("nelder_mead", evaluator, simplex[best],
                   float(values[best]), iterations, converged, history)


def differential_evolution(
    fn,
    parameters,
    *,
    seed: int = 0,
    population: int = 16,
    generations: int = 40,
    differential_weight: float = 0.6,
    crossover: float = 0.8,
    tol: float = 1e-9,
    executor=None,
    jobs: int | None = None,
    cache=None,
    cache_tag: str | None = None,
    failure_penalty: float = DEFAULT_FAILURE_PENALTY,
    batch: bool | str = "auto",
) -> OptimizeResult:
    """DE/rand/1/bin differential evolution over the parameter box.

    Each generation builds ``population`` trial vectors (mutation +
    binomial crossover, all drawn parent-side from a generator seeded
    by ``SeedSequence(seed)``) and evaluates them as **one batched
    sweep** — the population fans out across ``executor``/``jobs``
    workers with per-candidate ``SeedSequence`` children for stochastic
    objectives.  Selection is greedy per slot.  Because every random
    draw happens in the parent and :func:`repro.sweep.run_sweep` is
    executor-independent, a fixed seed yields **bit-identical results
    on serial, thread and process executors**.

    A candidate whose evaluation raises (``ConvergenceError`` included)
    is charged ``failure_penalty`` — it loses its slot, the run
    continues.  Converges when the population's value spread falls
    below ``tol``.
    """
    if population < 4:
        raise DesignError("differential evolution needs population >= 4")
    if not (0.0 < crossover <= 1.0):
        raise DesignError("crossover must be in (0, 1]")
    if differential_weight <= 0:
        raise DesignError("differential_weight must be positive")
    root = np.random.SeedSequence(seed)
    driver_seed, eval_seed = root.spawn(2)
    rng = np.random.default_rng(driver_seed)
    evaluator = _BatchEvaluator(
        fn, parameters, executor=executor, jobs=jobs, cache=cache,
        cache_tag=cache_tag, failure_penalty=failure_penalty,
        eval_seed_root=eval_seed, batch=batch,
    )
    dims = len(evaluator.parameters)

    # Initial population: uniform in the unit cube, slot 0 pinned to
    # the declared initial point so a known-good starting design is
    # always in the gene pool.
    vectors = rng.random((population, dims))
    vectors[0] = [p.initial_unit() for p in evaluator.parameters]
    values = evaluator(list(vectors))

    history = [float(values.min())]
    converged = False
    iterations = 0
    for iterations in range(1, generations + 1):
        trials = np.empty_like(vectors)
        for i in range(population):
            # Three distinct partners, none equal to i.
            choices = [j for j in range(population) if j != i]
            a, b, c = rng.choice(choices, size=3, replace=False)
            mutant = vectors[a] + differential_weight * (
                vectors[b] - vectors[c]
            )
            mutant = np.clip(mutant, 0.0, 1.0)
            cross = rng.random(dims) < crossover
            cross[rng.integers(dims)] = True  # at least one gene crosses
            trials[i] = np.where(cross, mutant, vectors[i])
        trial_values = evaluator(list(trials))
        better = trial_values < values
        vectors[better] = trials[better]
        values[better] = trial_values[better]
        history.append(float(values.min()))
        if float(values.max() - values.min()) <= tol:
            converged = True
            break
    best = int(np.argmin(values))
    return _finish("differential_evolution", evaluator, vectors[best],
                   float(values[best]), iterations, converged, history)

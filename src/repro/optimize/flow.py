"""The closed top-down loop: sweep -> specs -> reuse-or-size -> models.

This is the paper's Section 2+3+4 story as one executable pipeline
(CLI: ``repro optimize``):

1. **System sweep** — run the Fig. 5 image-rejection grid (phase error
   x gain balance) through the behavioral simulator on the parallel
   sweep engine.
2. **Derive** — invert the sweep surface at the requested IRR target
   into block specs for the 90-degree shifter and the mixer paths
   (:mod:`repro.optimize.derive`).
3. **Re-use** — look the derived specs up in the analog cell database;
   a cell whose recorded simulation data qualifies is checked out and
   counted toward the paper's >70 % reuse rate
   (:mod:`repro.optimize.reuse`).
4. **Size** — blocks with no qualifying cell are sized: the Gilbert
   mixer's bias (tail current, load) and transistor geometry (emitter
   length) are optimized with differential evolution, conversion gain
   and fT scored through the geometry-generated Gummel-Poon model
   (:mod:`repro.optimize.optimizers`).
5. **Regenerate** — the sized shape's full Gummel-Poon parameter set
   and ``.MODEL`` card are emitted by
   :class:`~repro.geometry.ModelParameterGenerator` (the paper's
   Fig. 10 program), ready for transistor-level verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..celldb import AnalogCellDatabase, seed_database
from ..devices.ft import ft_at_ic
from ..errors import DesignError
from ..geometry import (
    ModelParameterGenerator,
    TransistorShape,
    default_reference,
)
from ..rfsystems.image_rejection import (
    fig5_sweep_result,
    image_rejection_ratio_db,
)
from ..rfsystems.mixer_cell import GilbertMixerSpec, ideal_conversion_gain
from .derive import SpecDerivation, derive_image_rejection_specs
from .optimizers import (
    OptimizeResult,
    Parameter,
    differential_evolution,
    spec_objective,
)
from .reuse import ReuseReport, commit_reuse, find_reusable_cells
from .spec import BoundKind, Spec, SpecSet

#: Default Fig. 5 phase-error axis for the derivation sweep (degrees).
DEFAULT_PHASE_AXIS = (0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)
#: Default gain-balance family (fractional), as in the paper's figure.
DEFAULT_GAIN_AXIS = (0.01, 0.03, 0.05, 0.07, 0.09)


def _mixer_measurements(params: dict, *, generator: ModelParameterGenerator,
                        vcc: float) -> dict:
    """Electrical figures of one Gilbert-mixer sizing candidate.

    ``params`` carries the knobs (``tail_current``, ``load_resistance``,
    ``emitter_length``); the transistor model is regenerated from the
    candidate's geometry, so the score moves with physical shape laws,
    not a bare area factor.  Module-level and driven through a partial
    so it pickles for the process executor.
    """
    ic = params["tail_current"]
    rl = params["load_resistance"]
    shape = TransistorShape(emitter_width=1.2,
                            emitter_length=params["emitter_length"],
                            emitter_strips=1, base_stripes=2)
    model = generator.generate(shape)
    spec = GilbertMixerSpec(vcc=vcc, load_resistance=rl, tail_current=ic)
    gain = ideal_conversion_gain(model, spec)
    ft = ft_at_ic(model, ic / 2.0).ft
    return {
        "conversion_gain_db": 20.0 * math.log10(max(gain, 1e-12)),
        "ft_ghz": ft / 1e9,
        "load_drop_v": ic * rl,
        "power_mw": vcc * ic * 1e3,
    }


def _power_cost(params: dict, measurements: dict) -> float:
    """Tie-breaker once specs are met: prefer the lowest-power sizing."""
    return 0.01 * measurements["power_mw"]


def mixer_sizing_specs(conversion_gain_db: float, ft_min_ghz: float,
                       headroom_v: float) -> SpecSet:
    """The sizing spec set for the Gilbert mixer cell."""
    return SpecSet("gilbert_mixer", [
        Spec("conversion_gain_db", conversion_gain_db, BoundKind.LOWER,
             unit="dB"),
        Spec("ft_ghz", ft_min_ghz, BoundKind.LOWER, unit="GHz"),
        Spec("load_drop_v", headroom_v, BoundKind.UPPER, unit="V"),
    ])


@dataclass(frozen=True)
class SizingOutcome:
    """A sized mixer: optimizer result, electrical spec, model card."""

    result: OptimizeResult
    measurements: dict  #: figures of the winning candidate
    mixer_spec: GilbertMixerSpec
    shape: TransistorShape
    model_card: str
    specs_met: bool

    def summary(self) -> str:
        lines = [self.result.summary()]
        lines.append(
            f"  sized: Ic={self.mixer_spec.tail_current * 1e3:.3f} mA, "
            f"RL={self.mixer_spec.load_resistance:.0f} ohm, "
            f"shape {self.shape.name}"
        )
        lines.append(
            f"  delivers: {self.measurements['conversion_gain_db']:.1f} dB "
            f"conversion gain, fT {self.measurements['ft_ghz']:.2f} GHz, "
            f"{self.measurements['power_mw']:.2f} mW "
            f"({'specs met' if self.specs_met else 'SPECS NOT MET'})"
        )
        return "\n".join(lines)


@dataclass
class OptimizeFlowReport:
    """Everything the ``repro optimize`` pipeline produced."""

    irr_target_db: float
    derivation: SpecDerivation
    shifter_reuse: ReuseReport
    mixer_reuse: ReuseReport
    reuse_fraction: float
    sizing: SizingOutcome | None  #: None when the mixer was re-used
    predicted_irr_db: float  #: closed-loop check with the chosen blocks
    events: list = field(default_factory=list)  #: stage-by-stage log

    @property
    def closed(self) -> bool:
        """Whether the loop closed: system target met by chosen blocks."""
        return self.predicted_irr_db >= self.irr_target_db

    def summary(self) -> str:
        lines = [f"repro optimize — top-down loop at IRR >= "
                 f"{self.irr_target_db:g} dB"]
        for stage, text in self.events:
            lines.append(f"\n[{stage}]")
            lines.extend(f"  {line}" for line in text.splitlines())
        verdict = "CLOSED" if self.closed else "NOT CLOSED"
        lines.append(
            f"\nloop {verdict}: predicted IRR with chosen blocks = "
            f"{self.predicted_irr_db:.1f} dB "
            f"(target {self.irr_target_db:g} dB), "
            f"reuse rate {self.reuse_fraction * 100:.0f} %"
        )
        return "\n".join(lines)


def run_optimize_flow(
    irr_target_db: float = 30.0,
    gain_corner: float = 0.01,
    conversion_gain_db: float = 12.0,
    ft_min_ghz: float = 4.0,
    headroom_v: float = 1.5,
    vcc: float = 5.0,
    db: AnalogCellDatabase | None = None,
    generator: ModelParameterGenerator | None = None,
    phase_axis=DEFAULT_PHASE_AXIS,
    gain_axis=DEFAULT_GAIN_AXIS,
    executor=None,
    jobs: int | None = None,
    cache=None,
    seed: int = 0,
    population: int = 12,
    generations: int = 25,
) -> OptimizeFlowReport:
    """Run the whole spec-driven optimization loop; returns the report.

    ``executor``/``jobs``/``cache`` flow into both the Fig. 5 system
    sweep and the differential-evolution population evaluations; with a
    fixed ``seed`` the outcome is bit-identical on every executor.
    """
    import functools

    if db is None:
        db = seed_database()
    if generator is None:
        generator = ModelParameterGenerator(reference=default_reference())
    events: list = []

    # -- 1: system-level sweep (Fig. 5) --------------------------------------------
    sweep = fig5_sweep_result(
        phase_axis, gain_axis, executor=executor, jobs=jobs, cache=cache,
        on_error="skip",
    )
    events.append(("system sweep", sweep.stats.summary()))

    # -- 2: derive block specs from the sweep surface ------------------------------
    derivation = derive_image_rejection_specs(
        sweep, irr_target_db, gain_corner, owner="ir_mixer")
    events.append(("derive", derivation.summary()))

    # -- 3: re-use lookup against the cell database --------------------------------
    shifter_reuse = find_reusable_cells(
        db, derivation.specs, keyword="phase shifter", library="TVR")
    if shifter_reuse.reused:
        commit_reuse(db, shifter_reuse)
    events.append(("reuse: phase shifter", shifter_reuse.summary()))

    mixer_specs = SpecSet("dn_mixer", [
        Spec("conversion_gain_db", conversion_gain_db, BoundKind.LOWER,
             unit="dB"),
        Spec("gain_error", derivation.specs.get("gain_error").target,
             BoundKind.UPPER, scale=0.01),
    ])
    mixer_reuse = find_reusable_cells(
        db, mixer_specs, keyword="mixer", library="TVR")
    if mixer_reuse.reused:
        commit_reuse(db, mixer_reuse)
    events.append(("reuse: mixer", mixer_reuse.summary()))

    # -- 4: size what could not be re-used ------------------------------------------
    sizing = None
    if not mixer_reuse.reused:
        sizing_specs = mixer_sizing_specs(conversion_gain_db, ft_min_ghz,
                                          headroom_v)
        objective = spec_objective(
            sizing_specs,
            functools.partial(_mixer_measurements, generator=generator,
                              vcc=vcc),
            extra_cost=_power_cost,
        )
        result = differential_evolution(
            objective,
            [
                Parameter("tail_current", 2e-4, 8e-3, initial=2e-3,
                          log=True),
                Parameter("load_resistance", 100.0, 2000.0, initial=500.0,
                          log=True),
                Parameter("emitter_length", 2.0, 24.0, initial=6.0),
            ],
            seed=seed, population=population, generations=generations,
            executor=executor, jobs=jobs, cache=cache,
        )
        measurements = _mixer_measurements(result.best_params,
                                           generator=generator, vcc=vcc)
        shape = TransistorShape(
            emitter_width=1.2,
            emitter_length=result.best_params["emitter_length"],
            emitter_strips=1, base_stripes=2,
        )
        # -- 5: regenerate the Gummel-Poon model for the sized shape ---------
        sizing = SizingOutcome(
            result=result,
            measurements=measurements,
            mixer_spec=GilbertMixerSpec(
                vcc=vcc,
                load_resistance=result.best_params["load_resistance"],
                tail_current=result.best_params["tail_current"],
            ),
            shape=shape,
            model_card=generator.model_card(shape),
            specs_met=sizing_specs.satisfied_by(measurements),
        )
        events.append(("size: mixer", sizing.summary()))
        events.append(("regenerate", "Gummel-Poon model for "
                       f"{shape.name}:\n{sizing.model_card}"))

    # -- close the loop: predicted system IRR with the chosen blocks ---------------
    if shifter_reuse.reused:
        phase_err = shifter_reuse.chosen.measurements["phase_error_deg"]
        gain_err = shifter_reuse.chosen.measurements.get(
            "gain_error", derivation.specs.get("gain_error").target)
    else:
        # A newly designed shifter would be built to the derived spec.
        phase_err = derivation.phase_allowance_deg
        gain_err = derivation.specs.get("gain_error").target
    predicted = float(image_rejection_ratio_db(phase_err, gain_err))

    # Reuse audit over the blocks this loop touched.
    blocks = {
        "phase_shifter": (shifter_reuse.chosen.name
                          if shifter_reuse.reused else None),
        "mixer_i": mixer_reuse.chosen.name if mixer_reuse.reused else None,
        "mixer_q": mixer_reuse.chosen.name if mixer_reuse.reused else None,
    }
    stats = db.reuse_statistics(blocks)
    report = OptimizeFlowReport(
        irr_target_db=irr_target_db,
        derivation=derivation,
        shifter_reuse=shifter_reuse,
        mixer_reuse=mixer_reuse,
        reuse_fraction=stats.reuse_fraction,
        sizing=sizing,
        predicted_irr_db=predicted,
        events=events,
    )
    if not report.closed and sizing is None and not shifter_reuse.reused:
        raise DesignError(
            "optimization loop cannot close: no reusable shifter and "
            "no sizing stage ran"
        )
    return report

"""Spec derivation from system-level sweeps (automating the Fig. 5 read).

Section 2 of the paper derives block specifications from system-level
behavioral sweeps: "assume that a system designer requests an image
rejection ratio of 30 dB" — the designer then reads the IRR-vs-phase-
error family (gain balance as parameter) and picks the allowable phase
error and gain balance for the 90-degree shifters.  This module does
the read-off mechanically:

* :func:`invert_threshold` — generic monotone curve inversion with
  linear interpolation between sweep samples,
* :func:`derive_phase_allowances` — the whole Fig. 5 family inverted at
  an IRR target (one allowance per swept gain balance),
* :func:`derive_image_rejection_specs` — the end product: a
  :class:`~repro.optimize.spec.SpecSet` for the image-rejection mixer
  (max phase error, max gain error) derived from a
  :class:`~repro.sweep.SweepResult` over the ``phase`` x ``gain`` grid.

The sweep is the source of truth — the derivation never calls the
closed-form IRR law, so it works unchanged when the sweep points come
from the behavioral simulator or (via mixed-level refinement) from
transistor-level runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import DesignError
from ..sweep import SweepResult
from .spec import BoundKind, Spec, SpecSet


def invert_threshold(x, y, target: float) -> float | None:
    """Largest ``x`` with ``y(x) >= target`` on a decreasing sampled curve.

    ``x`` must be strictly increasing; ``y`` is expected to decrease
    (the usual shape of a degradation-vs-imperfection curve).  The
    crossing is located by linear interpolation between the bracketing
    samples; ``+inf`` samples (a perfect point, e.g. IRR at zero phase
    error) are handled by interpolating from the last finite sample.
    Returns None when even ``x[0]`` misses the target, and ``x[-1]``
    when the whole curve clears it.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or x.shape != y.shape or len(x) < 2:
        raise DesignError(
            "threshold inversion needs two same-length 1-D arrays with "
            "at least two samples"
        )
    if np.any(np.diff(x) <= 0):
        raise DesignError("threshold inversion needs strictly increasing x")
    above = y >= target
    if not above[0]:
        return None
    if above[-1]:
        return float(x[-1])
    # First index where the curve has dropped below the target.
    drop = int(np.argmin(above))
    x0, x1 = x[drop - 1], x[drop]
    y0, y1 = y[drop - 1], y[drop]
    if not np.isfinite(y0):
        # The bracket's upper sample is perfect (infinite); the best
        # linear statement available is the segment's lower end.
        return float(x0)
    if y0 == y1:
        return float(x0)
    fraction = (y0 - target) / (y0 - y1)
    return float(x0 + fraction * (x1 - x0))


@dataclass(frozen=True)
class SpecDerivation:
    """A derived spec set plus the evidence it was derived from."""

    specs: SpecSet
    irr_target_db: float
    gain_corner: float  #: the gain-balance corner actually used
    phase_allowance_deg: float  #: largest phase error meeting the target
    allowances: dict  #: {gain_error: phase allowance or None} full family

    def summary(self) -> str:
        lines = [
            f"derived from Fig. 5 sweep at IRR >= "
            f"{self.irr_target_db:g} dB:",
            f"  gain corner {self.gain_corner * 100:g} % -> phase error "
            f"<= {self.phase_allowance_deg:.3f} deg",
            "  full family:",
        ]
        for gain, allowance in sorted(self.allowances.items()):
            text = ("unreachable" if allowance is None
                    else f"{allowance:.3f} deg")
            lines.append(f"    gain {gain * 100:5.1f} % -> {text}")
        return "\n".join(lines)


def _family_from_sweep(sweep) -> dict:
    """``{gain: ([phases], [irrs])}`` from a SweepResult or fig5 dict."""
    if isinstance(sweep, SweepResult):
        family: dict[float, list] = {}
        for point, value in zip(sweep.points, sweep.values):
            params = point.params
            if "phase" not in params or "gain" not in params:
                raise DesignError(
                    "spec derivation needs sweep points with 'phase' and "
                    f"'gain' parameters; got {sorted(params)}"
                )
            if value is None:
                continue  # failed point under on_error="skip"
            family.setdefault(float(params["gain"]), []).append(
                (float(params["phase"]), float(value))
            )
    elif isinstance(sweep, dict):
        # The {gain: [(phase, irr), ...]} shape fig5_sweep returns.
        family = {
            float(gain): [(float(p), float(v)) for p, v in pairs
                          if v is not None]
            for gain, pairs in sweep.items()
        }
    else:
        raise DesignError(
            f"cannot derive specs from {type(sweep).__name__}; expected "
            "a SweepResult or a fig5_sweep {gain: [(phase, irr)]} dict"
        )
    curves = {}
    for gain, pairs in family.items():
        pairs.sort(key=lambda pv: pv[0])
        if len(pairs) < 2:
            raise DesignError(
                f"gain balance {gain:g}: need at least two surviving "
                "phase points to invert the sweep"
            )
        phases = [p for p, _ in pairs]
        irrs = [v for _, v in pairs]
        curves[gain] = (phases, irrs)
    if not curves:
        raise DesignError("sweep has no usable points to derive from")
    return curves


def derive_phase_allowances(sweep, irr_target_db: float) -> dict:
    """Invert the Fig. 5 family: per swept gain balance, the largest
    phase error still meeting the IRR target (None if unreachable)."""
    return {
        gain: invert_threshold(phases, irrs, irr_target_db)
        for gain, (phases, irrs) in _family_from_sweep(sweep).items()
    }


def derive_image_rejection_specs(
    sweep,
    irr_target_db: float,
    gain_corner: float,
    owner: str = "ir_mixer",
    margin_deg: float = 0.0,
) -> SpecDerivation:
    """Derive the image-rejection mixer's block specs from a system sweep.

    ``sweep`` is the Fig. 5 grid — a :class:`~repro.sweep.SweepResult`
    over ``phase`` x ``gain`` (see
    :func:`repro.rfsystems.fig5_sweep_result`) or the dict
    :func:`~repro.rfsystems.fig5_sweep` returns.  ``gain_corner`` picks
    the gain-balance curve to read (the nearest swept value is used);
    ``margin_deg`` tightens the derived phase spec by a design margin.

    Returns a :class:`SpecDerivation` whose spec set bounds the phase
    shifter's error (``phase_error_deg``, UPPER) and the path gain
    imbalance (``gain_error``, UPPER) — exactly the pair the paper's
    designer writes down after looking at Fig. 5.
    """
    if not math.isfinite(irr_target_db):
        raise DesignError("IRR target must be finite")
    allowances = derive_phase_allowances(sweep, irr_target_db)
    gains = sorted(allowances)
    corner = min(gains, key=lambda g: abs(g - gain_corner))
    allowance = allowances[corner]
    if allowance is None:
        reachable = [g for g in gains if allowances[g] is not None]
        raise DesignError(
            f"IRR {irr_target_db:g} dB is unreachable at gain balance "
            f"{corner:g} (even a perfect phase shifter falls short); "
            + (f"feasible gain balances: {reachable}" if reachable
               else "no swept gain balance can meet it")
        )
    specs = SpecSet(owner, [
        Spec("phase_error_deg", allowance, BoundKind.UPPER, unit="deg",
             margin=margin_deg, scale=max(allowance, 1.0)),
        Spec("gain_error", corner, BoundKind.UPPER,
             scale=max(corner, 0.01)),
    ])
    return SpecDerivation(
        specs=specs,
        irr_target_db=irr_target_db,
        gain_corner=corner,
        phase_allowance_deg=allowance,
        allowances=allowances,
    )

"""Spec-driven design optimization: closing the top-down loop.

The paper's methodology runs system simulation -> block specs ->
re-use-or-design -> geometry-true device models.  This package makes
that loop executable:

- :mod:`~repro.optimize.spec` — specs as scored objects
  (:class:`Spec`, :class:`SpecSet`) with smooth penalties usable as
  optimizer objectives.
- :mod:`~repro.optimize.derive` — derive block specs from a
  system-level sweep surface (the Fig. 5 image-rejection chart,
  inverted).
- :mod:`~repro.optimize.reuse` — check the analog cell database for a
  qualifying cell before designing (the paper's >70 % re-use claim).
- :mod:`~repro.optimize.optimizers` — deterministic derivative-free
  optimizers (coordinate search, Nelder-Mead, differential evolution)
  whose population evaluations fan out through the sweep engine:
  parallel, cached, failure-tolerant, and bit-identical across
  executors for a fixed seed.
- :mod:`~repro.optimize.flow` — the end-to-end ``repro optimize``
  pipeline: sweep, derive, re-use, size, regenerate Gummel-Poon
  models.
"""

from .spec import BoundKind, Spec, SpecScore, SpecSet
from .derive import (
    SpecDerivation,
    derive_image_rejection_specs,
    derive_phase_allowances,
    invert_threshold,
)
from .reuse import (
    ReuseCandidate,
    ReuseReport,
    commit_reuse,
    find_reusable_cells,
    judge_cell,
)
from .optimizers import (
    DEFAULT_FAILURE_PENALTY,
    OptimizeResult,
    Parameter,
    coordinate_search,
    differential_evolution,
    nelder_mead,
    spec_objective,
)
from .flow import (
    OptimizeFlowReport,
    SizingOutcome,
    mixer_sizing_specs,
    run_optimize_flow,
)

__all__ = [
    "BoundKind",
    "Spec",
    "SpecScore",
    "SpecSet",
    "SpecDerivation",
    "invert_threshold",
    "derive_phase_allowances",
    "derive_image_rejection_specs",
    "ReuseCandidate",
    "ReuseReport",
    "judge_cell",
    "find_reusable_cells",
    "commit_reuse",
    "Parameter",
    "OptimizeResult",
    "spec_objective",
    "coordinate_search",
    "nelder_mead",
    "differential_evolution",
    "DEFAULT_FAILURE_PENALTY",
    "OptimizeFlowReport",
    "SizingOutcome",
    "mixer_sizing_specs",
    "run_optimize_flow",
]

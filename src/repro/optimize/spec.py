"""Optimization-facing specifications with smooth penalty scoring.

:mod:`repro.core.specs` gives the top-down flow *checkable* specs
(pass/fail verdicts for the verification step).  Optimizers need more:
a **smooth, always-defined score** that tells a search how far from
feasible a candidate is and keeps pulling even deep inside the
infeasible region.  :class:`Spec` adds that scoring face — a bound kind
(lower/upper/equal), a required design margin, a normalization scale and
a weight — and :class:`SpecSet` aggregates a block's specs into the
scalar objective the :mod:`repro.optimize.optimizers` minimize.

The penalty is the square of a softplus-smoothed violation::

    deficit  = how far the measurement misses target (+ margin),
               normalized by ``scale``
    smoothed = (deficit + sqrt(deficit^2 + smoothing^2)) / 2
    penalty  = weight * smoothed^2

Zero (to within ``smoothing``) when the spec is met with margin,
quadratically increasing when violated, and C1-continuous at the
boundary — the shape derivative-free searches like best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum

from ..errors import DesignError


class BoundKind(Enum):
    """How a measured value is bounded by the target."""

    LOWER = ">="  #: measured must be at least target (gain, fT, IRR...)
    UPPER = "<="  #: measured must be at most target (phase error, power)
    EQUAL = "=="  #: measured must sit within +/- margin of target


@dataclass(frozen=True)
class Spec:
    """One named requirement with a smooth feasibility score.

    ``margin`` is the *required design margin*: a LOWER spec with target
    30 and margin 2 scores clean only from 32 up (and an EQUAL spec uses
    it as its +/- tolerance).  ``scale`` normalizes the deficit so specs
    in different units compare fairly; it defaults to ``max(|target|,
    1)``.  ``weight`` trades specs against each other inside a
    :class:`SpecSet`.
    """

    name: str
    target: float
    kind: BoundKind = BoundKind.LOWER
    unit: str = ""
    margin: float = 0.0
    weight: float = 1.0
    scale: float | None = None
    smoothing: float = 1e-4

    def __post_init__(self):
        if not self.name:
            raise DesignError("spec needs a name")
        if self.margin < 0:
            raise DesignError(f"spec {self.name!r}: margin must be >= 0")
        if self.kind is BoundKind.EQUAL and self.margin == 0:
            raise DesignError(
                f"spec {self.name!r}: EQUAL needs a positive margin "
                "(the +/- tolerance)"
            )
        if self.weight <= 0:
            raise DesignError(f"spec {self.name!r}: weight must be > 0")
        if self.scale is not None and self.scale <= 0:
            raise DesignError(f"spec {self.name!r}: scale must be > 0")
        if self.smoothing <= 0:
            raise DesignError(f"spec {self.name!r}: smoothing must be > 0")

    @property
    def normalization(self) -> float:
        """The deficit divisor actually used."""
        if self.scale is not None:
            return self.scale
        return max(abs(self.target), 1.0)

    # -- scoring -----------------------------------------------------------------

    def margin_of(self, measured: float) -> float:
        """Signed headroom beyond target+margin (positive = clean pass).

        In the spec's own units: a LOWER 30 dB spec with margin 2
        measured at 35 has ``margin_of == 3``.
        """
        if math.isnan(measured):
            return -math.inf
        if self.kind is BoundKind.LOWER:
            return measured - (self.target + self.margin)
        if self.kind is BoundKind.UPPER:
            return (self.target - self.margin) - measured
        return self.margin - abs(measured - self.target)

    def deficit(self, measured: float) -> float:
        """Normalized shortfall: ``-margin_of / normalization``."""
        headroom = self.margin_of(measured)
        if math.isinf(headroom):
            return math.inf if headroom < 0 else -math.inf
        return -headroom / self.normalization

    def satisfied_by(self, measured: float,
                     with_margin: bool = True) -> bool:
        """Hard verdict; ``with_margin=False`` checks the bare target."""
        if with_margin:
            return self.margin_of(measured) >= 0.0
        return replace(self, margin=self.margin
                       if self.kind is BoundKind.EQUAL else 0.0
                       ).margin_of(measured) >= 0.0

    def penalty(self, measured: float) -> float:
        """Smooth scalar cost: ~0 when met with margin, grows
        quadratically with the normalized violation."""
        deficit = self.deficit(measured)
        if math.isinf(deficit):
            return math.inf if deficit > 0 else 0.0
        smoothed = 0.5 * (deficit
                          + math.sqrt(deficit * deficit
                                      + self.smoothing * self.smoothing))
        return self.weight * smoothed * smoothed

    # -- bounds for the re-use lookup ---------------------------------------------

    def bound_range(self, with_margin: bool = True) -> tuple:
        """The acceptable ``(low, high)`` interval of the measurement.

        This is the range handed to
        :meth:`repro.celldb.AnalogCellDatabase.search` by the re-use
        lookup.
        """
        margin = self.margin if with_margin else (
            self.margin if self.kind is BoundKind.EQUAL else 0.0
        )
        if self.kind is BoundKind.LOWER:
            return (self.target + margin, None)
        if self.kind is BoundKind.UPPER:
            return (None, self.target - margin)
        return (self.target - margin, self.target + margin)

    def describe(self) -> str:
        text = f"{self.name} {self.kind.value} {self.target:g}"
        if self.unit:
            text += f" {self.unit}"
        if self.margin and self.kind is not BoundKind.EQUAL:
            text += f" (margin {self.margin:g})"
        elif self.kind is BoundKind.EQUAL:
            text = (f"{self.name} = {self.target:g} ± {self.margin:g}"
                    + (f" {self.unit}" if self.unit else ""))
        return text


@dataclass(frozen=True)
class SpecScore:
    """One spec judged against one measurement."""

    spec: Spec
    measured: float
    penalty: float
    margin: float  #: signed headroom in the spec's units
    satisfied: bool

    def describe(self) -> str:
        verdict = "PASS" if self.satisfied else "FAIL"
        return (f"[{verdict}] {self.spec.describe()} "
                f"(measured {self.measured:g}, margin {self.margin:+g})")


class SpecSet:
    """A named group of :class:`Spec` with aggregate scoring.

    The scalar :meth:`penalty` is the optimization objective's spec
    term; :meth:`score` exposes the per-spec breakdown for reports.
    Iteration order is insertion order.
    """

    def __init__(self, owner: str, specs=None):
        self.owner = owner
        self._specs: dict[str, Spec] = {}
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: Spec) -> Spec:
        """Add one spec; duplicate names are rejected."""
        if spec.name in self._specs:
            raise DesignError(f"{self.owner}: duplicate spec {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> list[str]:
        """Spec names in insertion order."""
        return list(self._specs)

    def get(self, name: str) -> Spec:
        """Look up one spec by name."""
        try:
            return self._specs[name]
        except KeyError:
            raise DesignError(
                f"{self.owner}: no spec named {name!r}"
            ) from None

    # -- scoring -----------------------------------------------------------------

    def score(self, measurements: dict) -> list[SpecScore]:
        """Judge measurements spec by spec; missing values score NaN
        (infinite penalty — unknown performance is not a pass)."""
        scores = []
        for spec in self._specs.values():
            measured = float(measurements.get(spec.name, math.nan))
            scores.append(SpecScore(
                spec=spec,
                measured=measured,
                penalty=spec.penalty(measured),
                margin=spec.margin_of(measured),
                satisfied=spec.satisfied_by(measured),
            ))
        return scores

    def penalty(self, measurements: dict) -> float:
        """Summed smooth penalty over all specs (the objective term)."""
        return sum(s.penalty for s in self.score(measurements))

    def satisfied_by(self, measurements: dict,
                     with_margin: bool = True) -> bool:
        """True when every spec passes."""
        return all(
            spec.satisfied_by(float(measurements.get(spec.name, math.nan)),
                              with_margin=with_margin)
            for spec in self._specs.values()
        )

    def worst(self, measurements: dict) -> SpecScore:
        """The spec with the least headroom (normalized)."""
        scores = self.score(measurements)
        if not scores:
            raise DesignError(f"{self.owner}: spec set is empty")
        return min(scores, key=lambda s: s.margin / s.spec.normalization)

    def bound_ranges(self, with_margin: bool = True) -> dict:
        """``{name: (low, high)}`` for the cell-database re-use search."""
        return {spec.name: spec.bound_range(with_margin)
                for spec in self._specs.values()}

    # -- bridging to the flow's checkable specs ------------------------------------

    def to_specifications(self):
        """Convert to :class:`repro.core.specs.Specification` objects so
        derived specs can be budgeted onto a
        :class:`~repro.core.flow.TopDownFlow` block."""
        from ..core.specs import Comparison, Specification

        converted = []
        for spec in self._specs.values():
            if spec.kind is BoundKind.LOWER:
                converted.append(Specification(
                    spec.name, spec.target, Comparison.AT_LEAST,
                    unit=spec.unit))
            elif spec.kind is BoundKind.UPPER:
                converted.append(Specification(
                    spec.name, spec.target, Comparison.AT_MOST,
                    unit=spec.unit))
            else:
                converted.append(Specification(
                    spec.name, spec.target, Comparison.WITHIN,
                    tolerance=spec.margin, unit=spec.unit))
        return converted

    def describe(self) -> str:
        lines = [f"specs for {self.owner}:"]
        lines.extend(f"  {spec.describe()}" for spec in self._specs.values())
        return "\n".join(lines)

"""Re-use before you design: spec-driven cell-database lookup.

Section 3 of the paper: "Investigating the re-use of IC design in the
authors design group revealed that above 70% of the circuits can be
re-used."  The precondition for that rate is that a designer *checks
the library first*.  This module is that check, mechanized: given a
derived :class:`~repro.optimize.spec.SpecSet`, rank the database's
cells by how well their **recorded simulation data** meets the specs,
and only fall through to sizing (:mod:`repro.optimize.optimizers`)
when nothing qualifies.

A candidate qualifies only on recorded evidence — a cell with no data
for a constrained quantity is reported with the gap listed, never
silently accepted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..celldb.database import AnalogCellDatabase
from ..celldb.model import Cell
from ..errors import DesignError
from .spec import SpecSet


@dataclass(frozen=True)
class ReuseCandidate:
    """One database cell judged against a spec set.

    When the cell carries a qualification record
    (:attr:`~repro.celldb.Cell.qualification`), the judgment uses each
    spec's **worst-corner** value instead of the nominal recording, and
    corner stress violations or unsolved corners disqualify the cell
    outright — a cell is only re-usable on behavior it holds across its
    qualified envelope.
    """

    cell: Cell
    measurements: dict  #: recorded data (worst-corner values when qualified)
    satisfied: bool  #: every spec met on recorded evidence
    penalty: float  #: smooth spec penalty (inf when data is missing)
    missing: tuple  #: spec names with no recorded measurement
    spec_misses: tuple = ()  #: recorded-but-failing spec names
    qualified: bool = False  #: judged from a corner qualification record
    stress_violations: int = 0  #: error-severity violations across corners
    failed_corners: int = 0  #: corners that did not solve
    worst_corners: dict = field(default_factory=dict)  #: spec -> worst corner

    @property
    def name(self) -> str:
        return self.cell.name

    @property
    def stress_clean(self) -> bool:
        return self.stress_violations == 0 and self.failed_corners == 0

    def describe(self) -> str:
        basis = "worst corner" if self.qualified else "nominal"
        if self.satisfied:
            return (f"{self.name}: meets specs at {basis} "
                    f"(penalty {self.penalty:.3g})")
        issues = []
        if self.missing:
            issues.append(f"no recorded data for {list(self.missing)}")
        if self.spec_misses:
            issues.append(f"misses {list(self.spec_misses)} at {basis} "
                          f"(penalty {self.penalty:.3g})")
        if self.stress_violations:
            issues.append(
                f"{self.stress_violations} corner stress violation(s)")
        if self.failed_corners:
            issues.append(f"{self.failed_corners} unsolved corner(s)")
        if not issues:  # pragma: no cover - satisfied covers this
            issues.append("does not qualify")
        return f"{self.name}: " + "; ".join(issues)


@dataclass
class ReuseReport:
    """Outcome of one reuse lookup: ranked candidates, best pick."""

    specs: SpecSet
    candidates: list  #: ReuseCandidate, best first
    chosen: ReuseCandidate | None  #: best fully-qualifying candidate

    @property
    def reused(self) -> bool:
        return self.chosen is not None

    def missing_quantities(self) -> dict:
        """Every data gap in the pool: ``{spec name: [cell names]}``.

        A cell appears under every quantity it lacks, even when other
        specs already disqualify it — the listing tells a librarian
        exactly which characterizations to backfill.
        """
        gaps: dict[str, list] = {}
        for candidate in self.candidates:
            for name in candidate.missing:
                gaps.setdefault(name, []).append(candidate.name)
        return gaps

    def summary(self) -> str:
        lines = [f"reuse lookup for {self.specs.owner!r}:"]
        if not self.candidates:
            lines.append("  no candidate cells in the database")
        for candidate in self.candidates:
            marker = "->" if candidate is self.chosen else "  "
            lines.append(f"  {marker} {candidate.describe()}")
        gaps = self.missing_quantities()
        if gaps:
            lines.append("  missing quantities:")
            for name, cells in gaps.items():
                lines.append(f"    {name}: {', '.join(cells)}")
        decision = (f"re-use {self.chosen.name}" if self.reused
                    else "design new (no qualifying cell)")
        lines.append(f"  decision: {decision}")
        return "\n".join(lines)


def judge_cell(cell: Cell, specs: SpecSet) -> ReuseCandidate:
    """Score one cell's recorded evidence against a spec set.

    Uses the merged nominal simulation summary, overridden per spec by
    the worst-corner envelope value when the cell has been qualified
    (see :class:`ReuseCandidate`).
    """
    measurements = cell.simulation_summary()
    qualification = getattr(cell, "qualification", None)
    qualified = bool(qualification and qualification.get("outcomes"))
    worst_corners: dict = {}
    stress_violations = 0
    failed_corners = 0
    if qualified:
        from ..verify.report import QualificationReport

        report = QualificationReport.from_dict(qualification)
        stress_violations = report.error_violation_count()
        failed_corners = len(report.failed_corners())
        for name, (value, corner) in \
                report.worst_measurements(specs).items():
            measurements[name] = value
            worst_corners[name] = corner
    missing = tuple(name for name in specs.names()
                    if name not in measurements)
    penalty = specs.penalty(measurements) if not missing else math.inf
    spec_misses = tuple(
        name for name in specs.names()
        if name not in missing and not specs.get(name).satisfied_by(
            float(measurements[name]))
    )
    stress_clean = stress_violations == 0 and failed_corners == 0
    satisfied = (not missing and stress_clean
                 and specs.satisfied_by(measurements))
    return ReuseCandidate(
        cell=cell,
        measurements=measurements,
        satisfied=satisfied,
        penalty=penalty,
        missing=missing,
        spec_misses=spec_misses,
        qualified=qualified,
        stress_violations=stress_violations,
        failed_corners=failed_corners,
        worst_corners=worst_corners,
    )


def find_reusable_cells(
    db: AnalogCellDatabase,
    specs: SpecSet,
    keyword: str | None = None,
    library: str | None = None,
    category1: str | None = None,
    category2: str | None = None,
) -> ReuseReport:
    """Rank the database's candidate cells against a derived spec set.

    ``keyword``/``library``/``category*`` narrow the candidate pool
    exactly as :meth:`~repro.celldb.AnalogCellDatabase.search` does
    (case-insensitive); every remaining cell is judged on its recorded
    simulation data — at the **worst corner** of its qualification
    envelope when one is recorded (see :func:`judge_cell`).  Candidates
    are ordered qualifying-first, stress-clean before corner-flagged,
    then by ascending penalty (most headroom first among qualifiers,
    closest miss first among the rest); data-less cells rank last.

    The lookup is read-only — call :func:`commit_reuse` (or
    :meth:`~repro.celldb.AnalogCellDatabase.copy_for_reuse` directly)
    once the design actually adopts the chosen cell, so the paper's
    reuse-rate audit counts it.
    """
    if len(specs) == 0:
        raise DesignError("reuse lookup needs a non-empty spec set")
    pool = db.search(keyword=keyword, library=library,
                     category1=category1, category2=category2)
    candidates = [judge_cell(cell, specs) for cell in pool]
    candidates.sort(key=lambda c: (not c.satisfied, not c.stress_clean,
                                   len(c.missing), c.penalty, c.name))
    chosen = next((c for c in candidates if c.satisfied), None)
    return ReuseReport(specs=specs, candidates=candidates, chosen=chosen)


def commit_reuse(db: AnalogCellDatabase, report: ReuseReport) -> Cell:
    """Check the report's chosen cell out of the database (audited).

    Bumps the cell's reuse counter — the paper's >70 % figure is an
    audit of exactly these checkouts — and returns the cell.
    """
    if report.chosen is None:
        raise DesignError(
            f"reuse lookup for {report.specs.owner!r} chose no cell; "
            "nothing to commit"
        )
    return db.copy_for_reuse(report.chosen.name)

"""Re-use before you design: spec-driven cell-database lookup.

Section 3 of the paper: "Investigating the re-use of IC design in the
authors design group revealed that above 70% of the circuits can be
re-used."  The precondition for that rate is that a designer *checks
the library first*.  This module is that check, mechanized: given a
derived :class:`~repro.optimize.spec.SpecSet`, rank the database's
cells by how well their **recorded simulation data** meets the specs,
and only fall through to sizing (:mod:`repro.optimize.optimizers`)
when nothing qualifies.

A candidate qualifies only on recorded evidence — a cell with no data
for a constrained quantity is reported with the gap listed, never
silently accepted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..celldb.database import AnalogCellDatabase
from ..celldb.model import Cell
from ..errors import DesignError
from .spec import SpecSet


@dataclass(frozen=True)
class ReuseCandidate:
    """One database cell judged against a spec set."""

    cell: Cell
    measurements: dict  #: the cell's merged recorded simulation data
    satisfied: bool  #: every spec met on recorded evidence
    penalty: float  #: smooth spec penalty (inf when data is missing)
    missing: tuple  #: spec names with no recorded measurement

    @property
    def name(self) -> str:
        return self.cell.name

    def describe(self) -> str:
        if self.satisfied:
            return (f"{self.name}: meets specs "
                    f"(penalty {self.penalty:.3g})")
        if self.missing:
            return (f"{self.name}: no recorded data for "
                    f"{list(self.missing)}")
        return f"{self.name}: misses specs (penalty {self.penalty:.3g})"


@dataclass
class ReuseReport:
    """Outcome of one reuse lookup: ranked candidates, best pick."""

    specs: SpecSet
    candidates: list  #: ReuseCandidate, best first
    chosen: ReuseCandidate | None  #: best fully-qualifying candidate

    @property
    def reused(self) -> bool:
        return self.chosen is not None

    def summary(self) -> str:
        lines = [f"reuse lookup for {self.specs.owner!r}:"]
        if not self.candidates:
            lines.append("  no candidate cells in the database")
        for candidate in self.candidates:
            marker = "->" if candidate is self.chosen else "  "
            lines.append(f"  {marker} {candidate.describe()}")
        decision = (f"re-use {self.chosen.name}" if self.reused
                    else "design new (no qualifying cell)")
        lines.append(f"  decision: {decision}")
        return "\n".join(lines)


def judge_cell(cell: Cell, specs: SpecSet) -> ReuseCandidate:
    """Score one cell's recorded simulation data against a spec set."""
    measurements = cell.simulation_summary()
    missing = tuple(name for name in specs.names()
                    if name not in measurements)
    penalty = specs.penalty(measurements) if not missing else math.inf
    satisfied = not missing and specs.satisfied_by(measurements)
    return ReuseCandidate(
        cell=cell,
        measurements=measurements,
        satisfied=satisfied,
        penalty=penalty,
        missing=missing,
    )


def find_reusable_cells(
    db: AnalogCellDatabase,
    specs: SpecSet,
    keyword: str | None = None,
    library: str | None = None,
    category1: str | None = None,
    category2: str | None = None,
) -> ReuseReport:
    """Rank the database's candidate cells against a derived spec set.

    ``keyword``/``library``/``category*`` narrow the candidate pool
    exactly as :meth:`~repro.celldb.AnalogCellDatabase.search` does
    (case-insensitive); every remaining cell is judged on its recorded
    simulation data.  Candidates are ordered qualifying-first, then by
    ascending penalty (most headroom first among qualifiers, closest
    miss first among the rest); data-less cells rank last.

    The lookup is read-only — call :func:`commit_reuse` (or
    :meth:`~repro.celldb.AnalogCellDatabase.copy_for_reuse` directly)
    once the design actually adopts the chosen cell, so the paper's
    reuse-rate audit counts it.
    """
    if len(specs) == 0:
        raise DesignError("reuse lookup needs a non-empty spec set")
    pool = db.search(keyword=keyword, library=library,
                     category1=category1, category2=category2)
    candidates = [judge_cell(cell, specs) for cell in pool]
    candidates.sort(key=lambda c: (not c.satisfied, len(c.missing),
                                   c.penalty, c.name))
    chosen = next((c for c in candidates if c.satisfied), None)
    return ReuseReport(specs=specs, candidates=candidates, chosen=chosen)


def commit_reuse(db: AnalogCellDatabase, report: ReuseReport) -> Cell:
    """Check the report's chosen cell out of the database (audited).

    Bumps the cell's reuse counter — the paper's >70 % figure is an
    audit of exactly these checkouts — and returns the cell.
    """
    if report.chosen is None:
        raise DesignError(
            f"reuse lookup for {report.specs.owner!r} chose no cell; "
            "nothing to commit"
        )
    return db.copy_for_reuse(report.chosen.name)

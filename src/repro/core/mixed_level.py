"""Mixed-level simulation: transistor-level blocks inside a behavioral
system.

Section 2.1: "By replacing an AHDL block with a transistor level one,
circuit designers can easily find the effects of primitive elements to
the whole system."  The phasor system engine cannot run a SPICE netlist
directly, so the bridge is *small-signal characterization*: the deck is
solved (DC + AC) on the frequency grid of interest, and the measured
complex transfer function becomes a behavioral block that the system
engine evaluates per tone.  This is exact for linear blocks (amplifiers,
filters, phase shifters) at their operating point — precisely the blocks
the Fig. 5 budget is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..behavioral.blocks import Block
from ..behavioral.signal import Spectrum
from ..errors import DesignError
from ..spice.ac import solve_ac
from ..spice.parser import parse_deck


@dataclass(frozen=True)
class CharacterizationResult:
    """Measured complex response of a transistor-level block."""

    frequencies: np.ndarray
    response: np.ndarray  #: complex H(f) = V(out)/V(in)

    def gain_db_at(self, frequency: float) -> float:
        return 20.0 * np.log10(abs(self.interpolate(frequency)))

    def phase_deg_at(self, frequency: float) -> float:
        return float(np.degrees(np.angle(self.interpolate(frequency))))

    def interpolate(self, frequency: float) -> complex:
        """Complex response at one frequency (interpolating mag/phase)."""
        freqs = self.frequencies
        if frequency <= freqs[0]:
            return complex(self.response[0])
        if frequency >= freqs[-1]:
            return complex(self.response[-1])
        magnitude = np.interp(frequency, freqs, np.abs(self.response))
        phase = np.interp(
            frequency, freqs, np.unwrap(np.angle(self.response))
        )
        return magnitude * np.exp(1j * phase)


def characterize_linear(
    deck_text: str,
    input_source: str,
    output_node: str,
    frequencies,
) -> CharacterizationResult:
    """AC-characterize a transistor-level deck.

    ``input_source`` names the deck's driving V source (its AC magnitude
    is forced to 1), ``output_node`` the observed node.  Returns H(f) on
    the requested grid.
    """
    deck = parse_deck(deck_text)
    circuit = deck.circuit
    source = circuit.element(input_source)
    if not hasattr(source, "ac_mag"):
        raise DesignError(
            f"{input_source!r} is not an independent source"
        )
    source.ac_mag = 1.0
    source.ac_phase_deg = 0.0
    frequencies = np.asarray(sorted(set(float(f) for f in frequencies)))
    if len(frequencies) == 0:
        raise DesignError("characterization needs at least one frequency")
    result = solve_ac(circuit, frequencies)
    return CharacterizationResult(
        frequencies=frequencies,
        response=result.voltage(output_node),
    )


class CharacterizedLinearBlock(Block):
    """A behavioral block replaying a measured transfer function."""

    def __init__(self, name: str, characterization: CharacterizationResult):
        super().__init__(name, ["in"], ["out"])
        self.characterization = characterization

    def process(self, inputs):
        signal = self._input(inputs, "in")
        return {"out": signal.filtered(self.characterization.interpolate)}


def characterize_block(
    design_block,
    input_source: str,
    output_node: str,
    frequencies,
) -> CharacterizedLinearBlock:
    """Characterize a design block's transistor view and install it.

    Sets ``design_block.characterized`` so the design can be elaborated
    with this block at transistor level.
    """
    if not design_block.has_transistor_view:
        raise DesignError(
            f"block {design_block.name!r} has no transistor-level deck"
        )
    measured = characterize_linear(
        design_block.transistor_deck, input_source, output_node, frequencies
    )
    block = CharacterizedLinearBlock(design_block.behavioral.name, measured)
    design_block.characterized = block
    return block

"""The top-down design flow manager (paper Fig. 1 and Section 2).

The flow the paper proposes, as executable steps:

1. **Describe** — every function block gets an AHDL/behavioral view.
2. **Analyze** — simulate the whole system at the behavioral level.
3. **Budget** — derive block specifications from system-level sweeps
   (e.g. Fig. 5: the 30 dB image-rejection requirement becomes a phase/
   gain matching pair for the 90-degree shifters).
4. **Implement** — design each block at the primitive-element level,
   re-using cells from the database where possible.
5. **Verify** — swap transistor-level blocks into the system
   (mixed-level) and re-check the system specification.

:class:`TopDownFlow` drives those steps over a :class:`~repro.core.design.Design`
and records an auditable log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from ..behavioral.signal import Spectrum
from ..celldb.database import AnalogCellDatabase
from ..errors import DesignError
from .design import Design, DesignBlock, ViewLevel
from .specs import SpecCheck, Specification, SpecificationSet


class FlowPhase(Enum):
    """The five steps of the paper's top-down flow."""

    DESCRIBE = "describe"
    ANALYZE = "analyze"
    BUDGET = "budget"
    IMPLEMENT = "implement"
    VERIFY = "verify"


@dataclass(frozen=True)
class FlowEvent:
    phase: FlowPhase
    subject: str
    detail: str


@dataclass
class VerificationReport:
    """Outcome of a system-level verification run."""

    level_by_block: dict[str, str]
    checks: list[SpecCheck]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)


class TopDownFlow:
    """Drives a design through describe/analyze/budget/implement/verify."""

    def __init__(self, design: Design,
                 system_specs: SpecificationSet,
                 cell_database: AnalogCellDatabase | None = None):
        self.design = design
        self.system_specs = system_specs
        self.cell_database = cell_database
        self.log: list[FlowEvent] = []

    def _record(self, phase: FlowPhase, subject: str, detail: str) -> None:
        self.log.append(FlowEvent(phase, subject, detail))

    # -- step 1: describe ---------------------------------------------------------

    def describe_block(self, block: DesignBlock, inputs, outputs) -> DesignBlock:
        self.design.add_block(block, inputs, outputs)
        origin = (f"re-used from cell {block.source_cell}" if block.is_reused
                  else "newly described")
        self._record(FlowPhase.DESCRIBE, block.name, origin)
        return block

    # -- step 2: analyze ------------------------------------------------------------

    def analyze(
        self,
        stimuli: dict[str, Spectrum],
        measure: Callable[[dict[str, Spectrum]], dict[str, float]],
    ) -> dict[str, float]:
        """Run the behavioral system and extract named measurements."""
        system = self.design.elaborate()
        nets = system.run(stimuli)
        measurements = measure(nets)
        self._record(
            FlowPhase.ANALYZE, self.design.name,
            "behavioral run: " + ", ".join(
                f"{k}={v:g}" for k, v in sorted(measurements.items())
            ),
        )
        return measurements

    # -- step 3: budget ----------------------------------------------------------------

    def budget_spec(self, block_name: str, spec: Specification,
                    rationale: str) -> Specification:
        """Attach a derived specification to a block, with its why."""
        block = self.design.block(block_name)
        block.specs.add(spec)
        self._record(FlowPhase.BUDGET, block_name,
                     f"{spec.describe()} — {rationale}")
        return spec

    # -- step 4: implement ---------------------------------------------------------------

    def implement_block(self, block_name: str, deck_text: str,
                        from_cell: str | None = None) -> DesignBlock:
        """Attach a transistor-level implementation to a block.

        ``from_cell`` records (and audits, via the database's counter)
        that the implementation was copied from the cell library.
        """
        block = self.design.block(block_name)
        if from_cell is not None:
            if self.cell_database is None:
                raise DesignError("no cell database configured for re-use")
            self.cell_database.copy_for_reuse(from_cell)
            block.source_cell = from_cell
        block.transistor_deck = deck_text
        self._record(
            FlowPhase.IMPLEMENT, block_name,
            f"transistor level attached"
            + (f" (from cell {from_cell})" if from_cell else ""),
        )
        return block

    # -- step 5: verify -----------------------------------------------------------------

    def verify(
        self,
        stimuli: dict[str, Spectrum],
        measure: Callable[[dict[str, Spectrum]], dict[str, float]],
        transistor_blocks: list[str] = (),
    ) -> VerificationReport:
        """Re-run the system with the named blocks at transistor level."""
        for name in transistor_blocks:
            self.design.select_level(name, ViewLevel.TRANSISTOR)
        try:
            system = self.design.elaborate()
            nets = system.run(stimuli)
            measurements = measure(nets)
        finally:
            for name in transistor_blocks:
                self.design.select_level(name, ViewLevel.BEHAVIORAL)
        checks = self.system_specs.check(measurements)
        report = VerificationReport(
            level_by_block={
                b.name: ("transistor" if b.name in transistor_blocks
                         else "behavioral")
                for b in self.design.blocks()
            },
            checks=checks,
        )
        verdict = "PASS" if report.passed else "FAIL"
        self._record(
            FlowPhase.VERIFY, self.design.name,
            f"{verdict} with transistor-level {list(transistor_blocks)}",
        )
        return report

    # -- reporting ------------------------------------------------------------------------

    def reuse_statistics(self):
        """Audit the design's reuse rate against the cell database."""
        if self.cell_database is None:
            raise DesignError("no cell database configured")
        return self.cell_database.reuse_statistics(self.design.reuse_map())

    def format_log(self) -> str:
        lines = [f"top-down flow log for {self.design.name!r}:"]
        for event in self.log:
            lines.append(f"  [{event.phase.value:9s}] {event.subject}: "
                         f"{event.detail}")
        return "\n".join(lines)

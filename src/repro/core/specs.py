"""Specifications and spec budgets for the top-down flow.

The paper's Section 2: the system specification is given; the block
specifications are *derived* by the circuit designer from system-level
behavioral sweeps (Fig. 5 being the worked example: a 30 dB image
rejection requirement becomes a (gain balance, phase balance) pair for
the 90-degree shifters).  This module gives those derived numbers a
home: named, checkable specification objects grouped per block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from ..errors import DesignError


class Comparison(Enum):
    """How a measured value is judged against the target."""

    AT_LEAST = ">="
    AT_MOST = "<="
    WITHIN = "+/-"  #: |measured - target| <= tolerance


@dataclass(frozen=True)
class Specification:
    """One named, machine-checkable requirement."""

    name: str
    target: float
    comparison: Comparison = Comparison.AT_LEAST
    tolerance: float = 0.0
    unit: str = ""

    def __post_init__(self):
        if self.comparison is Comparison.WITHIN and self.tolerance <= 0:
            raise DesignError(
                f"spec {self.name!r}: WITHIN needs a positive tolerance"
            )

    def satisfied_by(self, measured: float) -> bool:
        if math.isnan(measured):
            return False
        if self.comparison is Comparison.AT_LEAST:
            return measured >= self.target
        if self.comparison is Comparison.AT_MOST:
            return measured <= self.target
        return abs(measured - self.target) <= self.tolerance

    def describe(self) -> str:
        if self.comparison is Comparison.WITHIN:
            return (f"{self.name} = {self.target:g} ± {self.tolerance:g} "
                    f"{self.unit}".strip())
        return f"{self.name} {self.comparison.value} {self.target:g} {self.unit}".strip()


@dataclass(frozen=True)
class SpecCheck:
    """Outcome of checking one spec against a measurement."""

    spec: Specification
    measured: float
    passed: bool

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.spec.describe()} (measured {self.measured:g})"


class SpecificationSet:
    """A named group of specifications (one per block, or the system's)."""

    def __init__(self, owner: str, specs: list[Specification] | None = None):
        self.owner = owner
        self._specs: dict[str, Specification] = {}
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: Specification) -> Specification:
        if spec.name in self._specs:
            raise DesignError(
                f"{self.owner}: duplicate spec {spec.name!r}"
            )
        self._specs[spec.name] = spec
        return spec

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs.values())

    def get(self, name: str) -> Specification:
        try:
            return self._specs[name]
        except KeyError:
            raise DesignError(
                f"{self.owner}: no spec named {name!r}"
            ) from None

    def check(self, measurements: dict[str, float]) -> list[SpecCheck]:
        """Judge measurements; a missing measurement is a failure."""
        checks = []
        for spec in self._specs.values():
            measured = measurements.get(spec.name, math.nan)
            checks.append(SpecCheck(spec, measured,
                                    spec.satisfied_by(measured)))
        return checks

    def all_pass(self, measurements: dict[str, float]) -> bool:
        return all(c.passed for c in self.check(measurements))

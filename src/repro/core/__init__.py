"""Top-down design methodology (paper Section 2)."""

from .specs import (
    Comparison,
    SpecCheck,
    Specification,
    SpecificationSet,
)
from .design import Design, DesignBlock, ViewLevel
from .mixed_level import (
    CharacterizationResult,
    CharacterizedLinearBlock,
    characterize_block,
    characterize_linear,
)
from .flow import (
    FlowEvent,
    FlowPhase,
    TopDownFlow,
    VerificationReport,
)
from .budgeting import (
    StagePlan,
    allocate_budget,
    allocate_iip3,
    allocate_noise_figure,
    hardest_stage,
)

__all__ = [
    "Specification",
    "SpecificationSet",
    "SpecCheck",
    "Comparison",
    "Design",
    "DesignBlock",
    "ViewLevel",
    "CharacterizationResult",
    "CharacterizedLinearBlock",
    "characterize_linear",
    "characterize_block",
    "TopDownFlow",
    "FlowPhase",
    "FlowEvent",
    "VerificationReport",
    "StagePlan",
    "allocate_noise_figure",
    "allocate_iip3",
    "allocate_budget",
    "hardest_stage",
]

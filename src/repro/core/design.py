"""Design hierarchy with per-block behavioral and transistor-level views.

A :class:`DesignBlock` is one function block of the IC (Fig. 1's boxes):
it always has a behavioral view (an elaborated
:class:`~repro.behavioral.blocks.Block`, typically from AHDL), may have a
transistor-level view (a SPICE deck), carries its derived specifications,
and remembers whether it was re-used from the cell database.  A
:class:`Design` assembles blocks into a system graph and can elaborate it
with each block at its *selected* level — the "replace an AHDL block with
a transistor level one" step of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from ..behavioral.blocks import Block
from ..behavioral.system import SystemModel
from ..errors import DesignError
from .specs import SpecificationSet


class ViewLevel(Enum):
    """Which representation of a block the system elaborates."""

    BEHAVIORAL = "behavioral"
    TRANSISTOR = "transistor"


@dataclass
class DesignBlock:
    """One function block with its views and bookkeeping."""

    name: str
    behavioral: Block
    #: SPICE deck text of the primitive-element implementation, if done.
    transistor_deck: str = ""
    #: Factory producing a behavioral block *characterized from* the
    #: transistor view (set by mixed-level tools); used when the selected
    #: level is TRANSISTOR.
    characterized: Block | None = None
    specs: SpecificationSet = None
    source_cell: str | None = None  #: cell-database origin, if re-used
    level: ViewLevel = ViewLevel.BEHAVIORAL

    def __post_init__(self):
        if self.specs is None:
            self.specs = SpecificationSet(self.name)

    @property
    def is_reused(self) -> bool:
        return self.source_cell is not None

    @property
    def has_transistor_view(self) -> bool:
        return bool(self.transistor_deck.strip())

    def select(self, level: ViewLevel) -> None:
        if level is ViewLevel.TRANSISTOR and self.characterized is None:
            raise DesignError(
                f"block {self.name!r}: no characterized transistor view; "
                "run the mixed-level characterization first"
            )
        self.level = level

    def active_block(self) -> Block:
        """The block to elaborate at the currently selected level."""
        if self.level is ViewLevel.TRANSISTOR:
            if self.characterized is None:
                raise DesignError(
                    f"block {self.name!r} selected at transistor level "
                    "without a characterized view"
                )
            return self.characterized
        return self.behavioral


class Design:
    """A top-level design: blocks plus their interconnect wiring."""

    def __init__(self, name: str):
        self.name = name
        self._blocks: dict[str, DesignBlock] = {}
        #: wiring entries: (block name, input port map, output port map)
        self._wiring: list[tuple[str, dict, dict]] = []

    def add_block(
        self,
        block: DesignBlock,
        inputs: dict[str, str] | list[str],
        outputs: dict[str, str] | list[str],
    ) -> DesignBlock:
        if block.name in self._blocks:
            raise DesignError(f"duplicate block {block.name!r}")
        self._blocks[block.name] = block
        self._wiring.append((block.name, inputs, outputs))
        return block

    def block(self, name: str) -> DesignBlock:
        try:
            return self._blocks[name]
        except KeyError:
            raise DesignError(f"no block named {name!r}") from None

    def blocks(self) -> list[DesignBlock]:
        return list(self._blocks.values())

    def select_level(self, name: str, level: ViewLevel) -> None:
        self.block(name).select(level)

    def elaborate(self) -> SystemModel:
        """Build the runnable system with each block at its level."""
        system = SystemModel(self.name)
        for name, inputs, outputs in self._wiring:
            block = self._blocks[name].active_block()
            system.add(block, inputs=inputs, outputs=outputs)
        return system

    def reuse_map(self) -> dict[str, str | None]:
        """block name -> source cell (for reuse auditing)."""
        return {b.name: b.source_cell for b in self._blocks.values()}

"""Automatic spec allocation over a receiver cascade.

Section 2's "determine the specifications for function blocks" step,
given algorithmic teeth: with the chain's gain line-up fixed, distribute
a system noise-figure or IIP3 target over the stages so that the Friis /
IIP3 cascade meets it exactly, with per-stage *difficulty weights*
steering which blocks get the loose numbers.

Closed forms (gains g_i, cumulative gain G_i = prod_{k<i} g_k):

* noise:  F_total - 1 = sum_i (F_i - 1)/G_i.  Choosing the i-th
  contribution proportional to weight w_i gives
  ``F_i = 1 + w_i/sum(w) * (F_target - 1) * G_i``.
* IIP3:   1/P_total = sum_i G_i/P_i (powers in mW).  Contribution
  proportional to w_i gives ``P_i = G_i * sum(w)/w_i * P_target``.

Both allocations reproduce the target exactly under the cascade
formulas, which the tests assert by round trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..behavioral.budget import CascadeReport, CascadeStage, cascade
from ..errors import DesignError
from ..units import db, from_db


@dataclass(frozen=True)
class StagePlan:
    """The fixed part of one stage before allocation."""

    name: str
    gain_db: float
    #: relative difficulty weight: large = this stage may be noisy /
    #: nonlinear (it is hard to do better), small = must be clean.
    weight: float = 1.0

    def __post_init__(self):
        if self.weight <= 0:
            raise DesignError(f"stage {self.name}: weight must be positive")


def _cumulative_gains(stages: Sequence[StagePlan]) -> list[float]:
    gains = []
    running = 1.0
    for stage in stages:
        gains.append(running)
        running *= from_db(stage.gain_db)
    return gains


def allocate_noise_figure(
    stages: Sequence[StagePlan],
    target_nf_db: float,
) -> list[CascadeStage]:
    """Distribute a system NF target over the stages (Friis-exact)."""
    if not stages:
        raise DesignError("allocation needs at least one stage")
    if target_nf_db <= 0:
        raise DesignError("target NF must be positive (in dB)")
    total_excess = from_db(target_nf_db) - 1.0
    weights = [s.weight for s in stages]
    weight_sum = sum(weights)
    cumulative = _cumulative_gains(stages)
    allocated = []
    for stage, weight, gain_before in zip(stages, weights, cumulative):
        excess = weight / weight_sum * total_excess * gain_before
        allocated.append(CascadeStage(
            name=stage.name,
            gain_db=stage.gain_db,
            nf_db=db(1.0 + excess),
        ))
    return allocated


def allocate_iip3(
    stages: Sequence[StagePlan],
    target_iip3_dbm: float,
) -> list[CascadeStage]:
    """Distribute a system IIP3 target over the stages (cascade-exact)."""
    if not stages:
        raise DesignError("allocation needs at least one stage")
    target_mw = 10.0 ** (target_iip3_dbm / 10.0)
    weights = [s.weight for s in stages]
    weight_sum = sum(weights)
    cumulative = _cumulative_gains(stages)
    allocated = []
    for stage, weight, gain_before in zip(stages, weights, cumulative):
        stage_mw = gain_before * weight_sum / weight * target_mw
        allocated.append(CascadeStage(
            name=stage.name,
            gain_db=stage.gain_db,
            iip3_dbm=10.0 * math.log10(stage_mw),
        ))
    return allocated


def allocate_budget(
    stages: Sequence[StagePlan],
    target_nf_db: float,
    target_iip3_dbm: float,
) -> tuple[list[CascadeStage], CascadeReport]:
    """Joint NF + IIP3 allocation; returns the stages and the achieved
    cascade report (which meets both targets by construction)."""
    noise_side = allocate_noise_figure(stages, target_nf_db)
    ip3_side = allocate_iip3(stages, target_iip3_dbm)
    merged = [
        CascadeStage(name=n.name, gain_db=n.gain_db, nf_db=n.nf_db,
                     iip3_dbm=p.iip3_dbm)
        for n, p in zip(noise_side, ip3_side)
    ]
    return merged, cascade(merged)


def hardest_stage(allocated: Sequence[CascadeStage]) -> CascadeStage:
    """The stage with the most demanding (lowest) NF allocation —
    the one the designer should assign to the strongest engineer."""
    if not allocated:
        raise DesignError("no stages")
    return min(allocated, key=lambda s: s.nf_db)

"""SPICE-style engineering-notation parsing and formatting.

SPICE decks (and this package's netlists, AHDL sources and process files)
write quantities like ``1.2u``, ``45MEG``, ``1.3G``, ``100n`` or ``4.7k``.
This module converts between those strings and floats.

Scale factors follow SPICE 2G6 conventions and are case-insensitive:

=========  ==========  =======
suffix     name        factor
=========  ==========  =======
``T``      tera        1e12
``G``      giga        1e9
``MEG``    mega        1e6
``K``      kilo        1e3
``M``      milli       1e-3
``U``      micro       1e-6
``N``      nano        1e-9
``P``      pico        1e-12
``F``      femto       1e-15
``A``      atto        1e-18
=========  ==========  =======

Note the SPICE quirk: ``M`` is *milli*, mega is spelled ``MEG``.  Trailing
unit names (``1.2uF``, ``45MEGHz``) are tolerated and ignored, as SPICE
does, with the exception that a bare unit letter that is also a scale
factor is interpreted as the scale factor (``10p`` is 10e-12).
"""

from __future__ import annotations

import math
import re

from .errors import UnitError

#: SPICE scale-factor suffixes, longest first so ``MEG`` wins over ``M``.
SCALE_FACTORS: tuple[tuple[str, float], ...] = (
    ("MEG", 1e6),
    ("MIL", 25.4e-6),
    ("T", 1e12),
    ("G", 1e9),
    ("K", 1e3),
    ("M", 1e-3),
    ("U", 1e-6),
    ("N", 1e-9),
    ("P", 1e-12),
    ("F", 1e-15),
    ("A", 1e-18),
)

_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<suffix>[a-zA-Z%]*)
        \s*$""",
    re.VERBOSE,
)


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE engineering-notation quantity into a float.

    Accepts plain numbers (``1e-6``), scaled values (``1.2u``, ``45MEG``)
    and scaled values with trailing unit names (``100nF``, ``1.3GHz``).
    Numeric inputs are passed through unchanged.

    >>> parse_value("1.2u")
    1.2e-06
    >>> parse_value("45MEG")
    45000000.0
    >>> parse_value(3.3)
    3.3

    Raises :class:`~repro.errors.UnitError` on malformed input.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if not match:
        raise UnitError(f"cannot parse quantity {text!r}")
    number = float(match.group("number"))
    suffix = match.group("suffix").upper()
    if not suffix or suffix == "%":
        return number * (0.01 if suffix == "%" else 1.0)
    for name, factor in SCALE_FACTORS:
        if suffix.startswith(name):
            return number * factor
    # An unrecognised suffix is a bare unit name ("Hz", "V") -> factor 1,
    # but only when it does not *start* with a scale letter (handled above).
    if suffix[0].isalpha():
        return number
    raise UnitError(f"cannot parse quantity {text!r}")


_FORMAT_STEPS: tuple[tuple[float, str], ...] = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "MEG"),
    (1e3, "K"),
    (1.0, ""),
    (1e-3, "M"),
    (1e-6, "U"),
    (1e-9, "N"),
    (1e-12, "P"),
    (1e-15, "F"),
)


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format a float in SPICE engineering notation.

    >>> format_value(1.2e-6)
    '1.2U'
    >>> format_value(45e6, "Hz")
    '45MEGHz'
    """
    if value == 0:
        return f"0{unit}"
    if not math.isfinite(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for factor, suffix in _FORMAT_STEPS:
        if magnitude >= factor:
            scaled = value / factor
            text = f"{scaled:.{digits}g}"
            return f"{text}{suffix}{unit}"
    # Below 1e-15: fall back to exponent notation.
    return f"{value:.{digits}g}{unit}"


def parse_frequency(text: str | float) -> float:
    """Parse a frequency; a convenience alias for :func:`parse_value`.

    Provided for call-site readability in RF system code, where frequencies
    mix "45MEG" deck syntax with plain floats.
    """
    value = parse_value(text)
    if value < 0:
        raise UnitError(f"frequency must be non-negative, got {text!r}")
    return value


def db(ratio: float) -> float:
    """Convert a power ratio to decibels (10*log10)."""
    if ratio <= 0:
        raise UnitError(f"cannot take dB of non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def db_voltage(ratio: float) -> float:
    """Convert a voltage (amplitude) ratio to decibels (20*log10)."""
    if ratio <= 0:
        raise UnitError(f"cannot take dB of non-positive ratio {ratio!r}")
    return 20.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def from_db_voltage(decibels: float) -> float:
    """Convert decibels to a voltage (amplitude) ratio."""
    return 10.0 ** (decibels / 20.0)

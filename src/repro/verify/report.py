"""The qualification verdict: per-corner outcomes -> datasheet report.

A :class:`QualificationReport` is the structured result of running one
cell (or bare deck) through the corner/stress harness: one
:class:`CornerOutcome` per corner (measurements, device stress
quantities, violations, or the failure record when the corner did not
solve), the measurement envelope across corners with the corners that
set each extreme, worst-corner headroom against a
:class:`~repro.optimize.spec.SpecSet`, and an overall pass/fail.

The report serializes losslessly to plain JSON data (``to_dict`` /
``from_dict`` / ``to_json``) — the shape stored on
:attr:`repro.celldb.Cell.qualification` and returned by the service's
``verify`` jobs — and renders as a datasheet-style text table
(:meth:`table`) for the ``repro verify`` CLI.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..optimize.spec import BoundKind, SpecSet
from .corners import VerificationError
from .stress import StressViolation

__all__ = ["CornerOutcome", "QualificationReport", "SpecHeadroom"]


def _clean(value: float) -> float | None:
    """NaN/inf -> None so reports stay valid strict-JSON."""
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class CornerOutcome:
    """Everything observed at one corner."""

    corner: str  #: corner name, e.g. ``"temp=85C/VCC=max/R=lo"``
    values: dict  #: the corner's ``{axis: value}`` point
    measurements: dict | None  #: ``{name: value}``; None when failed
    quantities: dict = field(default_factory=dict)  #: device stress table
    violations: tuple = ()  #: :class:`StressViolation` records
    failure: dict | None = None  #: failed-point forensics, or None

    @property
    def solved(self) -> bool:
        return self.failure is None

    def error_violations(self) -> list:
        return [v for v in self.violations if v.severity == "error"]

    def to_dict(self) -> dict:
        return {
            "corner": self.corner,
            "values": {k: float(v) for k, v in self.values.items()},
            "measurements": (
                None if self.measurements is None
                else {k: _clean(v) for k, v in self.measurements.items()}
            ),
            "quantities": {
                device: {k: _clean(v) for k, v in table.items()}
                for device, table in self.quantities.items()
            },
            "violations": [v.to_dict() for v in self.violations],
            "failure": self.failure,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CornerOutcome":
        try:
            measurements = data.get("measurements")
            return cls(
                corner=data["corner"],
                values=dict(data.get("values", {})),
                measurements=(None if measurements is None
                              else dict(measurements)),
                quantities={k: dict(v)
                            for k, v in data.get("quantities", {}).items()},
                violations=tuple(
                    StressViolation.from_dict(v)
                    for v in data.get("violations", ())
                ),
                failure=data.get("failure"),
            )
        except (KeyError, TypeError) as exc:
            raise VerificationError(
                f"bad corner-outcome record ({exc})"
            ) from exc


@dataclass(frozen=True)
class SpecHeadroom:
    """One spec judged at its worst corner."""

    spec: str
    measured: float
    corner: str
    margin: float  #: signed headroom in the spec's units (>= 0 passes)
    satisfied: bool

    def describe(self) -> str:
        verdict = "PASS" if self.satisfied else "FAIL"
        return (f"[{verdict}] {self.spec}: worst {self.measured:g} at "
                f"{self.corner} (margin {self.margin:+g})")


class QualificationReport:
    """Structured qualification result (see module docstring)."""

    SCHEMA = "repro-qualification-v1"

    def __init__(self, name: str, axes, outcomes, rules=(),
                 stats: dict | None = None):
        self.name = name
        self.axes = tuple(axes)  #: axis records (plain dicts)
        self.outcomes = tuple(outcomes)
        self.rules = tuple(rules)  #: rule records (plain dicts)
        self.stats = dict(stats or {})
        if not self.outcomes:
            raise VerificationError(
                f"qualification of {name!r} produced no corner outcomes"
            )

    # -- aggregate views -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.outcomes)

    def failed_corners(self) -> list:
        return [o for o in self.outcomes if not o.solved]

    def violations(self) -> list:
        """Every stress violation, tagged with its corner name."""
        found = []
        for outcome in self.outcomes:
            found.extend((outcome.corner, violation)
                         for violation in outcome.violations)
        return found

    def error_violation_count(self) -> int:
        return sum(len(o.error_violations()) for o in self.outcomes)

    def measurement_names(self) -> list:
        names: dict[str, None] = {}
        for outcome in self.outcomes:
            for key in (outcome.measurements or {}):
                names.setdefault(key)
        return list(names)

    def envelope(self) -> dict:
        """Min/max of each measurement across solved corners, with the
        corner that sets each extreme: ``{name: {"min": v, "min_corner":
        c, "max": v, "max_corner": c}}``.  Ties resolve to the earliest
        corner in expansion order (deterministic)."""
        env: dict[str, dict] = {}
        for outcome in self.outcomes:
            if outcome.measurements is None:
                continue
            for key, raw in outcome.measurements.items():
                if raw is None:
                    continue
                value = float(raw)
                if math.isnan(value):
                    continue
                slot = env.get(key)
                if slot is None:
                    env[key] = {"min": value, "min_corner": outcome.corner,
                                "max": value, "max_corner": outcome.corner}
                else:
                    if value < slot["min"]:
                        slot["min"] = value
                        slot["min_corner"] = outcome.corner
                    if value > slot["max"]:
                        slot["max"] = value
                        slot["max_corner"] = outcome.corner
        return env

    def nominal_measurements(self) -> dict:
        """Measurements at the nominal corner (the harness stamps its
        name into ``stats["nominal_corner"]``), falling back to the
        first solved corner."""
        nominal = self.stats.get("nominal_corner")
        if nominal is not None:
            for outcome in self.outcomes:
                if outcome.corner == nominal and outcome.solved:
                    return dict(outcome.measurements or {})
        for outcome in self.outcomes:
            if outcome.solved:
                return dict(outcome.measurements or {})
        return {}

    # -- spec judgment -------------------------------------------------------

    def worst_measurements(self, specs: SpecSet) -> dict:
        """Per spec, the envelope value on the spec's *adverse* side
        (LOWER -> envelope min, UPPER -> max, EQUAL -> the extreme
        farther from target), with the corner that produced it:
        ``{name: (value, corner)}``.  Specs with no measured data are
        absent."""
        env = self.envelope()
        worst: dict[str, tuple] = {}
        for spec in specs:
            slot = env.get(spec.name)
            if slot is None:
                continue
            if spec.kind is BoundKind.LOWER:
                worst[spec.name] = (slot["min"], slot["min_corner"])
            elif spec.kind is BoundKind.UPPER:
                worst[spec.name] = (slot["max"], slot["max_corner"])
            else:
                lo_dev = abs(slot["min"] - spec.target)
                hi_dev = abs(slot["max"] - spec.target)
                if hi_dev > lo_dev:
                    worst[spec.name] = (slot["max"], slot["max_corner"])
                else:
                    worst[spec.name] = (slot["min"], slot["min_corner"])
        return worst

    def headroom(self, specs: SpecSet) -> list:
        """Worst-corner headroom per spec (:class:`SpecHeadroom`), in
        spec order.  A spec with no measured quantity judges NaN —
        unknown performance never passes qualification."""
        worst = self.worst_measurements(specs)
        rows = []
        for spec in specs:
            value, corner = worst.get(spec.name, (math.nan, "(no data)"))
            rows.append(SpecHeadroom(
                spec=spec.name,
                measured=value,
                corner=corner,
                margin=spec.margin_of(value),
                satisfied=spec.satisfied_by(value),
            ))
        return rows

    def passed(self, specs: SpecSet | None = None) -> bool:
        """Overall verdict: every corner solved, no error-severity
        stress violation anywhere, and (when specs are given) every
        spec met at its worst corner."""
        if self.failed_corners():
            return False
        if self.error_violation_count():
            return False
        if specs is not None:
            return all(h.satisfied for h in self.headroom(specs))
        return True

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "name": self.name,
            "axes": [dict(a) for a in self.axes],
            "corners": len(self.outcomes),
            "failed_corners": len(self.failed_corners()),
            "stress_violations": self.error_violation_count(),
            "warnings": sum(
                1 for _, v in self.violations() if v.severity == "warn"
            ),
            "envelope": self.envelope(),
            "passed": self.passed(),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "rules": [dict(r) for r in self.rules],
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QualificationReport":
        try:
            return cls(
                name=data["name"],
                axes=data.get("axes", ()),
                outcomes=[CornerOutcome.from_dict(o)
                          for o in data["outcomes"]],
                rules=data.get("rules", ()),
                stats=data.get("stats"),
            )
        except (KeyError, TypeError) as exc:
            raise VerificationError(
                f"bad qualification record ({exc})"
            ) from exc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          allow_nan=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "QualificationReport":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise VerificationError(
                f"qualification JSON does not parse: {exc}"
            ) from exc

    # -- rendering -----------------------------------------------------------

    def table(self, specs: SpecSet | None = None) -> str:
        """Datasheet-style text report: envelope rows, stress findings,
        failures, verdict (spec headroom included when specs given)."""
        lines = [f"qualification: {self.name}",
                 f"  corners: {len(self.outcomes)}"
                 + (f" ({len(self.failed_corners())} failed)"
                    if self.failed_corners() else "")]
        for axis in self.axes:
            levels = "/".join(label for label, _ in axis.get("levels", ()))
            lines.append(f"  axis {axis.get('name')}: "
                         f"{axis.get('kind')} [{levels}]")
        env = self.envelope()
        if env:
            width = max(len(name) for name in env)
            lines.append(f"  {'quantity'.ljust(width)} "
                         f"{'min':>12} {'max':>12}  worst corners")
            for name, slot in env.items():
                lines.append(
                    f"  {name.ljust(width)} {slot['min']:>12.5g} "
                    f"{slot['max']:>12.5g}  "
                    f"{slot['min_corner']} / {slot['max_corner']}"
                )
        if specs is not None:
            lines.append("  spec headroom (worst corner):")
            for row in self.headroom(specs):
                lines.append(f"    {row.describe()}")
        flagged = self.violations()
        if flagged:
            lines.append(f"  stress: {len(flagged)} violation(s)")
            for corner, violation in flagged:
                lines.append(f"    {corner}: {violation.describe()}")
        else:
            lines.append("  stress: clean")
        for outcome in self.failed_corners():
            failure = outcome.failure or {}
            lines.append(f"  FAILED {outcome.corner}: "
                         f"{failure.get('error', 'unknown error')}")
        verdict = self.passed(specs)
        lines.append(f"  verdict: {'PASS' if verdict else 'FAIL'}")
        if self.stats:
            executor = self.stats.get("executor", "?")
            rate = self.stats.get("corners_per_second")
            extra = f", {rate:.1f} corners/s" if rate else ""
            lines.append(
                f"  run: executor={executor}, "
                f"evaluated={self.stats.get('evaluated', '?')}, "
                f"cache_hits={self.stats.get('cache_hits', 0)}{extra}"
            )
        return "\n".join(lines)

"""Corner expansion: tolerances and temperature ranges -> named corners.

The qualification flow (Section 3's cell re-use, made honest) judges a
cell at every combination of its environment's extremes, not just at
nominal.  A :class:`CornerAxis` names one varying quantity — a supply
or bias source level, the die temperature, or a global passive-value
scale factor — with a small set of named levels (classically
``min``/``nom``/``max``).  A :class:`CornerSet` is the full-factorial
product of its axes: every corner carries a deterministic index, a
human-readable name (``temp=85C/VCC=max/R=lo``) and the plain
``{axis: value}`` dict the sweep layer consumes as point parameters.

Ordering is deterministic by construction: axes expand in the order
given (last axis fastest, like an odometer), so corner ``k`` of a given
axis spec is the same corner on every machine, every executor, every
run — the property the sweep layer's bit-identity contract builds on.

Axis kinds:

``"source"``
    The level re-biases an independent V/I source through the blocked
    sweep engine's ``rhs_delta`` path — no recompile per corner.
``"temperature"``
    The level is a die temperature in Celsius; the harness rebuilds the
    deck's semiconductor devices via
    :func:`repro.spice.temperature.circuit_at_temperature`.
``"scale"``
    The level multiplies every passive of one kind (``R``/``C``/``L``)
    — the classic process-tolerance corner on monolithic resistors.

``temperature`` and ``scale`` change the compiled matrix, so the
harness groups corners sharing those values into one derived deck each
(compile once per group); ``source`` levels ride inside a group as
sweep points.  Constructors therefore put deck-level axes first, which
keeps same-deck corners adjacent in the expansion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = [
    "AXIS_KINDS",
    "SCALE_TARGETS",
    "VerificationError",
    "CornerAxis",
    "Corner",
    "CornerSet",
    "temperature_axis",
    "source_axis",
    "scale_axis",
    "corners_from_tolerances",
]

#: Valid :attr:`CornerAxis.kind` values.
AXIS_KINDS = ("source", "temperature", "scale")

#: Valid :attr:`CornerAxis.target` values for ``scale`` axes.
SCALE_TARGETS = ("R", "C", "L")

#: Absolute zero in Celsius — the hard floor for temperature levels.
_ABSOLUTE_ZERO_C = -273.15


class VerificationError(ReproError):
    """A corner/stress qualification request or result is malformed."""


@dataclass(frozen=True)
class CornerAxis:
    """One varying quantity with named levels.

    ``name`` doubles as the sweep parameter key, so it must be unique
    within a :class:`CornerSet`.  ``target`` names what the level
    applies to: the source element for ``kind="source"`` (defaults to
    ``name``), the passive kind (``R``/``C``/``L``) for
    ``kind="scale"``, unused for ``kind="temperature"``.
    ``nominal_label`` marks the level the nominal corner uses; it
    defaults to the middle level.
    """

    name: str
    kind: str
    levels: tuple  #: ((label, value), ...) in expansion order
    target: str = ""
    nominal_label: str = ""

    def __post_init__(self):
        if not self.name:
            raise VerificationError("corner axis needs a name")
        if self.kind not in AXIS_KINDS:
            raise VerificationError(
                f"axis {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {AXIS_KINDS}"
            )
        levels = tuple((str(label), float(value))
                       for label, value in self.levels)
        object.__setattr__(self, "levels", levels)
        if not levels:
            raise VerificationError(
                f"axis {self.name!r} needs at least one level"
            )
        labels = [label for label, _ in levels]
        if len(set(labels)) != len(labels):
            raise VerificationError(
                f"axis {self.name!r}: level labels must be unique, "
                f"got {labels}"
            )
        values = [value for _, value in levels]
        if len(set(values)) != len(values):
            raise VerificationError(
                f"axis {self.name!r}: level values must be distinct, "
                f"got {values} — a duplicated value makes two corners "
                "indistinguishable"
            )
        for label, value in levels:
            if value != value or value in (float("inf"), float("-inf")):
                raise VerificationError(
                    f"axis {self.name!r} level {label!r}: value must be "
                    f"finite, got {value!r}"
                )
            if self.kind == "temperature" and value <= _ABSOLUTE_ZERO_C:
                raise VerificationError(
                    f"axis {self.name!r} level {label!r}: temperature "
                    f"{value:g}C is at or below absolute zero"
                )
            if self.kind == "scale" and value <= 0.0:
                raise VerificationError(
                    f"axis {self.name!r} level {label!r}: scale factor "
                    f"must be positive, got {value:g}"
                )
        if self.kind == "scale":
            target = (self.target or "R").upper()
            if target not in SCALE_TARGETS:
                raise VerificationError(
                    f"axis {self.name!r}: scale target must be one of "
                    f"{SCALE_TARGETS}, got {self.target!r}"
                )
            object.__setattr__(self, "target", target)
        elif self.kind == "source":
            object.__setattr__(self, "target", self.target or self.name)
        if not self.nominal_label:
            object.__setattr__(self, "nominal_label",
                               levels[len(levels) // 2][0])
        elif self.nominal_label not in labels:
            raise VerificationError(
                f"axis {self.name!r}: nominal label "
                f"{self.nominal_label!r} is not a level ({labels})"
            )

    @property
    def deck_level(self) -> bool:
        """True when the axis changes the compiled matrix (new deck per
        level) rather than riding the source re-bias path."""
        return self.kind in ("temperature", "scale")

    def value_of(self, label: str) -> float:
        for candidate, value in self.levels:
            if candidate == label:
                return value
        raise VerificationError(
            f"axis {self.name!r} has no level {label!r}"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "levels": [[label, value] for label, value in self.levels],
            "target": self.target,
            "nominal_label": self.nominal_label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CornerAxis":
        try:
            return cls(
                name=data["name"],
                kind=data["kind"],
                levels=tuple((lv[0], lv[1]) for lv in data["levels"]),
                target=data.get("target", ""),
                nominal_label=data.get("nominal_label", ""),
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise VerificationError(
                f"bad corner-axis record: {data!r} ({exc})"
            ) from exc


@dataclass(frozen=True)
class Corner:
    """One point of the full-factorial expansion."""

    index: int
    name: str  #: e.g. ``"temp=85C/VCC=max/R=lo"``
    labels: tuple  #: level label per axis, in axis order
    values: dict = field(compare=False)  #: ``{axis name: value}``

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "labels": list(self.labels),
            "values": dict(self.values),
        }


class CornerSet:
    """The deterministic full-factorial product of corner axes.

    Iteration yields :class:`Corner` objects in expansion order (first
    axis slowest).  The set is immutable after construction and
    picklable, so it can ride inside the harness's evaluator to worker
    processes.
    """

    def __init__(self, axes):
        self.axes = tuple(axes)
        if not self.axes:
            raise VerificationError("corner set needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise VerificationError(
                f"corner axes must have unique names, got {names}"
            )
        corners = []
        level_lists = [axis.levels for axis in self.axes]
        for index, combo in enumerate(itertools.product(*level_lists)):
            labels = tuple(label for label, _ in combo)
            values = {axis.name: value
                      for axis, (_, value) in zip(self.axes, combo)}
            name = "/".join(
                f"{axis.name}={label}"
                for axis, label in zip(self.axes, labels)
            )
            corners.append(Corner(index=index, name=name,
                                  labels=labels, values=values))
        self.corners = tuple(corners)

    def __len__(self) -> int:
        return len(self.corners)

    def __iter__(self):
        return iter(self.corners)

    def __getitem__(self, index: int) -> Corner:
        return self.corners[index]

    def __repr__(self) -> str:
        axes = ", ".join(f"{a.name}[{len(a.levels)}]" for a in self.axes)
        return f"<CornerSet {len(self.corners)} corners: {axes}>"

    def axis(self, name: str) -> CornerAxis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise VerificationError(f"corner set has no axis {name!r}")

    def nominal(self) -> Corner:
        """The corner at every axis's nominal label."""
        wanted = tuple(axis.nominal_label for axis in self.axes)
        for corner in self.corners:
            if corner.labels == wanted:
                return corner
        raise VerificationError("corner set has no nominal corner")

    def corner_named(self, name: str) -> Corner:
        for corner in self.corners:
            if corner.name == name:
                return corner
        raise VerificationError(f"no corner named {name!r}")

    def deck_axes(self) -> tuple:
        """Axes that force a derived deck per level (see module doc)."""
        return tuple(axis for axis in self.axes if axis.deck_level)

    def source_axes(self) -> tuple:
        return tuple(axis for axis in self.axes if axis.kind == "source")

    def to_dict(self) -> dict:
        return {"axes": [axis.to_dict() for axis in self.axes]}

    @classmethod
    def from_dict(cls, data: dict) -> "CornerSet":
        try:
            axes = [CornerAxis.from_dict(a) for a in data["axes"]]
        except (KeyError, TypeError) as exc:
            raise VerificationError(
                f"bad corner-set record: {data!r} ({exc})"
            ) from exc
        return cls(axes)


def temperature_axis(celsius_levels=(-20.0, 27.0, 85.0),
                     name: str = "temp") -> CornerAxis:
    """A die-temperature axis; levels in Celsius, labelled ``<T>C``."""
    levels = tuple((f"{float(t):g}C", float(t)) for t in celsius_levels)
    return CornerAxis(name=name, kind="temperature", levels=levels)


def source_axis(element: str, nominal: float, rel_tol: float,
                name: str | None = None) -> CornerAxis:
    """A min/nom/max axis on an independent source's DC level.

    ``rel_tol`` is the relative tolerance: a 5 V supply at 10 % expands
    to 4.5 / 5.0 / 5.5 V.
    """
    if rel_tol <= 0.0 or rel_tol >= 1.0:
        raise VerificationError(
            f"source axis {element!r}: rel_tol must be in (0, 1), "
            f"got {rel_tol!r}"
        )
    nominal = float(nominal)
    levels = (
        ("min", nominal * (1.0 - rel_tol)),
        ("nom", nominal),
        ("max", nominal * (1.0 + rel_tol)),
    )
    return CornerAxis(name=name or element, kind="source", levels=levels,
                      target=element, nominal_label="nom")


def scale_axis(target: str = "R", rel_tol: float = 0.1,
               name: str | None = None) -> CornerAxis:
    """A lo/nom/hi axis scaling every passive of one kind (``R``/``C``/
    ``L``) — monolithic process tolerance, e.g. +/-10 % on resistors."""
    if rel_tol <= 0.0 or rel_tol >= 1.0:
        raise VerificationError(
            f"scale axis {target!r}: rel_tol must be in (0, 1), "
            f"got {rel_tol!r}"
        )
    levels = (
        ("lo", 1.0 - rel_tol),
        ("nom", 1.0),
        ("hi", 1.0 + rel_tol),
    )
    return CornerAxis(name=name or target, kind="scale", levels=levels,
                      target=target, nominal_label="nom")


def corners_from_tolerances(
    sources: dict | None = None,
    temperatures_c=(-20.0, 27.0, 85.0),
    passive_tols: dict | None = None,
) -> CornerSet:
    """Expand tolerance declarations into a full-factorial corner set.

    ``sources`` maps source element names to ``(nominal, rel_tol)``;
    ``passive_tols`` maps passive kinds (``"R"``...) to a relative
    tolerance.  Deck-level axes (temperature, scales) come first so
    corners sharing a derived deck stay adjacent in the expansion.

    >>> corners = corners_from_tolerances({"V1": (5.0, 0.1)},
    ...                                   passive_tols={"R": 0.1})
    >>> len(corners)  # 3 temps x 3 R scales x 3 supply levels
    27
    """
    axes: list[CornerAxis] = []
    if temperatures_c:
        axes.append(temperature_axis(temperatures_c))
    for target, tol in (passive_tols or {}).items():
        axes.append(scale_axis(target, tol))
    for element, (nominal, tol) in (sources or {}).items():
        axes.append(source_axis(element, nominal, tol))
    return CornerSet(axes)

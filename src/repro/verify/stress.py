"""Declarative device stress rules checked against solved operating points.

A :class:`StressRule` states one rating: *devices of this kind must keep
this quantity at or below this limit* — BJT power dissipation, collector
current, collector-emitter voltage, resistor power, source current.
:func:`check_stress` evaluates a rules table against a circuit and its
solved DC operating point, returning named :class:`StressViolation`
records (which device, which quantity, measured vs. limit) rather than
a bare pass/fail, so a qualification report can say *Q3 dissipates
62 mW at temp=85C/VCC=max* instead of "stress failed".

Rules tables load from plain data (:func:`load_stress_rules` accepts a
dict, a JSON string, or a path to a JSON file), mirroring the
``stress_rules.yaml`` idiom of the HW_TDD exemplar without adding a
YAML dependency.  :data:`DEFAULT_STRESS_RULES` carries conservative
small-signal bipolar ratings scaled to this repo's seeded cells.

Quantities per device kind (all magnitudes):

==========  ===============  =============================================
kind        quantity         meaning
==========  ===============  =============================================
bjt         power_w          ``|ic*vce| + |ib*vbe|`` at the solved point
bjt         ic_a             collector current magnitude
bjt         vce_v            collector-emitter voltage magnitude
resistor    power_w          ``v^2 / R`` across the element
source      current_a        branch current (V sources) or DC level (I)
==========  ===============  =============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

from ..spice.elements.bjt import BJT
from ..spice.elements.resistor import Resistor
from ..spice.elements.sources import CurrentSource, VoltageSource
from .corners import VerificationError

__all__ = [
    "DEVICE_QUANTITIES",
    "DEFAULT_STRESS_RULES",
    "StressRule",
    "StressViolation",
    "device_quantities",
    "check_stress",
    "load_stress_rules",
]

#: Checkable quantities per device kind.
DEVICE_QUANTITIES = {
    "bjt": ("power_w", "ic_a", "vce_v"),
    "resistor": ("power_w",),
    "source": ("current_a",),
}

#: Severities a rule may carry; only ``"error"`` fails qualification.
SEVERITIES = ("error", "warn")


@dataclass(frozen=True)
class StressRule:
    """One device rating: ``quantity <= limit * derate`` for matching
    devices.  ``match`` is a case-sensitive glob on the element name
    (``"Q*"``, ``"RLOAD"``); ``derate`` tightens the limit the way a
    derating guideline would (0.5 = use half the rated maximum)."""

    name: str
    device: str  #: one of :data:`DEVICE_QUANTITIES`
    quantity: str
    limit: float
    severity: str = "error"
    match: str = "*"
    derate: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise VerificationError("stress rule needs a name")
        if self.device not in DEVICE_QUANTITIES:
            raise VerificationError(
                f"rule {self.name!r}: unknown device kind "
                f"{self.device!r}; expected one of "
                f"{tuple(DEVICE_QUANTITIES)}"
            )
        if self.quantity not in DEVICE_QUANTITIES[self.device]:
            raise VerificationError(
                f"rule {self.name!r}: device {self.device!r} has no "
                f"quantity {self.quantity!r}; expected one of "
                f"{DEVICE_QUANTITIES[self.device]}"
            )
        if not (self.limit > 0.0):
            raise VerificationError(
                f"rule {self.name!r}: limit must be positive, "
                f"got {self.limit!r}"
            )
        if self.severity not in SEVERITIES:
            raise VerificationError(
                f"rule {self.name!r}: severity must be one of "
                f"{SEVERITIES}, got {self.severity!r}"
            )
        if not (0.0 < self.derate <= 1.0):
            raise VerificationError(
                f"rule {self.name!r}: derate must be in (0, 1], "
                f"got {self.derate!r}"
            )

    @property
    def effective_limit(self) -> float:
        return self.limit * self.derate

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "device": self.device,
            "quantity": self.quantity,
            "limit": self.limit,
            "severity": self.severity,
            "match": self.match,
            "derate": self.derate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StressRule":
        try:
            return cls(
                name=data["name"],
                device=data["device"],
                quantity=data["quantity"],
                limit=float(data["limit"]),
                severity=data.get("severity", "error"),
                match=data.get("match", "*"),
                derate=float(data.get("derate", 1.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise VerificationError(
                f"bad stress-rule record: {data!r} ({exc})"
            ) from exc


@dataclass(frozen=True)
class StressViolation:
    """One device caught over a rating at one solved operating point."""

    rule: str
    device: str  #: element name, e.g. ``"Q3"``
    quantity: str
    value: float
    limit: float  #: the effective (derated) limit
    severity: str = "error"

    def describe(self) -> str:
        return (f"[{self.severity}] {self.device}: {self.quantity} = "
                f"{self.value:.4g} exceeds {self.limit:.4g} "
                f"(rule {self.rule})")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "device": self.device,
            "quantity": self.quantity,
            "value": self.value,
            "limit": self.limit,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StressViolation":
        try:
            return cls(
                rule=data["rule"],
                device=data["device"],
                quantity=data["quantity"],
                value=float(data["value"]),
                limit=float(data["limit"]),
                severity=data.get("severity", "error"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise VerificationError(
                f"bad stress-violation record: {data!r} ({exc})"
            ) from exc


#: Conservative ratings for the repo's small-signal bipolar cells:
#: generous enough that every seeded cell passes at nominal, tight
#: enough that a mis-biased corner (or a deliberately tightened rules
#: table) trips them.
DEFAULT_STRESS_RULES = (
    StressRule("bjt-power", "bjt", "power_w", limit=50e-3),
    StressRule("bjt-ic", "bjt", "ic_a", limit=20e-3),
    StressRule("bjt-vce", "bjt", "vce_v", limit=12.0),
    StressRule("resistor-power", "resistor", "power_w", limit=0.25),
    StressRule("source-current", "source", "current_a", limit=0.1),
)


def _voltage(x, index: int) -> float:
    return 0.0 if index < 0 else float(x[index])


def device_quantities(circuit, x) -> dict:
    """Stress-checkable quantities per device at a solved DC point.

    Returns ``{element name: {quantity: value}}`` in netlist order,
    covering every element kind named in :data:`DEVICE_QUANTITIES`.
    All values are magnitudes (ratings bound magnitude, not polarity).
    """
    table: dict[str, dict[str, float]] = {}
    for element in circuit:
        if isinstance(element, BJT):
            op = element.operating_point(x)
            vce = op.vbe - op.vbc
            table[element.name] = {
                "power_w": abs(op.ic * vce) + abs(op.ib * op.vbe),
                "ic_a": abs(op.ic),
                "vce_v": abs(vce),
            }
        elif isinstance(element, Resistor):
            p, n = element.node_index
            drop = _voltage(x, p) - _voltage(x, n)
            table[element.name] = {
                "power_w": drop * drop / float(element.resistance),
            }
        elif isinstance(element, VoltageSource):
            (branch,) = element.branch_index
            table[element.name] = {"current_a": abs(float(x[branch]))}
        elif isinstance(element, CurrentSource):
            table[element.name] = {
                "current_a": abs(float(element.source_value(None))),
            }
    return table


def _device_kind(quantities: dict) -> str:
    if "ic_a" in quantities:
        return "bjt"
    if "power_w" in quantities:
        return "resistor"
    return "source"


def check_stress(circuit, x, rules=DEFAULT_STRESS_RULES,
                 quantities: dict | None = None) -> list:
    """Evaluate a rules table at one solved operating point.

    Returns the :class:`StressViolation` list in deterministic order
    (netlist element order, then rules order).  ``quantities`` may pass
    a precomputed :func:`device_quantities` table to avoid re-deriving
    it when the caller also reports the raw numbers.
    """
    if quantities is None:
        quantities = device_quantities(circuit, x)
    violations = []
    for device, measured in quantities.items():
        kind = _device_kind(measured)
        for rule in rules:
            if rule.device != kind:
                continue
            if not fnmatchcase(device, rule.match):
                continue
            value = measured[rule.quantity]
            if value > rule.effective_limit:
                violations.append(StressViolation(
                    rule=rule.name,
                    device=device,
                    quantity=rule.quantity,
                    value=value,
                    limit=rule.effective_limit,
                    severity=rule.severity,
                ))
    return violations


def load_stress_rules(source) -> tuple:
    """Load a rules table from flexible plain data.

    Accepts a list of rule dicts, a ``{"rules": [...]}`` mapping, a JSON
    string of either shape, or a :class:`~pathlib.Path` (or a string
    pointing at an existing ``.json`` file).  Returns a tuple of
    :class:`StressRule`.
    """
    if isinstance(source, Path):
        source = source.read_text()
    elif isinstance(source, str) and source.strip().endswith(".json") \
            and Path(source).exists():
        source = Path(source).read_text()
    if isinstance(source, str):
        try:
            source = json.loads(source)
        except json.JSONDecodeError as exc:
            raise VerificationError(
                f"stress rules text is not valid JSON: {exc}"
            ) from exc
    if isinstance(source, dict):
        source = source.get("rules", source)
    if not isinstance(source, (list, tuple)):
        raise VerificationError(
            f"cannot load stress rules from {type(source).__name__}; "
            "expected a list of rule records (or {'rules': [...]})"
        )
    rules = tuple(
        rule if isinstance(rule, StressRule) else StressRule.from_dict(rule)
        for rule in source
    )
    if not rules:
        raise VerificationError("stress rules table is empty")
    return rules

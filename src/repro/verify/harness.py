"""The qualification harness: every corner through the blocked sweep engine.

:class:`CornerEvaluator` turns a deck plus a :class:`~repro.verify.corners.
CornerSet` into a sweep evaluation function the existing fault-tolerant
engine (:func:`repro.sweep.run_sweep`) can fan out: each sweep point is
one corner's ``{axis: value}`` dict, each value is one corner's outcome
(measurements, device stress quantities, violations).  The evaluator is
picklable (it ships deck text and plain dataclasses), batch-capable
(``supports_batch``/``evaluate_batch``), and content-hashed
(``__cache_tag__``) — so corners ride the same executor matrix, result
cache, ``on_error`` policies and bit-identity contract as every other
sweep in the repo.

Corner mechanics: axes that change the compiled matrix (temperature,
passive scale) are folded into **derived decks** — one
:class:`~repro.sweep.BlockedDCSweep` (and, with AC measurements, one
:class:`~repro.sweep.BlockedACSweep`) per distinct deck-level value
combination, compiled once and reused for every corner in the group —
while source axes ride each group's ``rhs_delta`` re-bias path.  A
27-corner set over 3 temperatures x 3 resistor scales x 3 supply levels
therefore compiles 9 corner decks and solves 3 stacked bias points
through each.

:func:`qualify_deck` / :func:`qualify_cell` wrap the whole flow and
return a :class:`~repro.verify.report.QualificationReport`.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..sweep import run_sweep
from ..sweep.batched import BlockedACSweep, BlockedDCSweep
from .corners import CornerSet, VerificationError, corners_from_tolerances
from .report import CornerOutcome, QualificationReport
from .stress import DEFAULT_STRESS_RULES, check_stress, device_quantities

__all__ = [
    "MEASUREMENT_KINDS",
    "Measurement",
    "dc_voltage",
    "dc_differential",
    "ac_gain",
    "ac_peak_gain",
    "ac_bandwidth",
    "CornerEvaluator",
    "qualify_deck",
    "qualify_cell",
    "default_corners",
    "default_measurements",
]

#: Measurement kinds and the analysis each one needs.
MEASUREMENT_KINDS = {
    "dc_voltage": "dc",
    "dc_differential": "dc",
    "ac_gain_db": "ac",
    "ac_peak_gain_db": "ac",
    "ac_bandwidth_hz": "ac",
}


@dataclass(frozen=True)
class Measurement:
    """One named quantity extracted from a corner's solved analyses.

    ``node`` (and ``ref`` for differential kinds) name circuit nodes;
    ``frequency`` pins AC gain to the grid point nearest that frequency
    (default: the lowest grid frequency).
    """

    name: str
    kind: str
    node: str
    ref: str = ""
    frequency: float | None = None

    def __post_init__(self):
        if not self.name:
            raise VerificationError("measurement needs a name")
        if self.kind not in MEASUREMENT_KINDS:
            raise VerificationError(
                f"measurement {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {tuple(MEASUREMENT_KINDS)}"
            )
        if not self.node:
            raise VerificationError(
                f"measurement {self.name!r} needs a node"
            )
        if self.kind == "dc_differential" and not self.ref:
            raise VerificationError(
                f"measurement {self.name!r}: dc_differential needs a "
                "ref node"
            )

    @property
    def analysis(self) -> str:
        return MEASUREMENT_KINDS[self.kind]

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "node": self.node,
                "ref": self.ref, "frequency": self.frequency}

    @classmethod
    def from_dict(cls, data: dict) -> "Measurement":
        try:
            return cls(
                name=data["name"], kind=data["kind"], node=data["node"],
                ref=data.get("ref", ""),
                frequency=data.get("frequency"),
            )
        except (KeyError, TypeError) as exc:
            raise VerificationError(
                f"bad measurement record: {data!r} ({exc})"
            ) from exc


def dc_voltage(name: str, node: str) -> Measurement:
    """DC node voltage at the corner's operating point."""
    return Measurement(name=name, kind="dc_voltage", node=node)


def dc_differential(name: str, node: str, ref: str) -> Measurement:
    """DC voltage difference ``V(node) - V(ref)``."""
    return Measurement(name=name, kind="dc_differential", node=node,
                       ref=ref)


def ac_gain(name: str, node: str,
            frequency: float | None = None) -> Measurement:
    """Small-signal gain magnitude in dB at one grid frequency
    (default: the lowest)."""
    return Measurement(name=name, kind="ac_gain_db", node=node,
                       frequency=frequency)


def ac_peak_gain(name: str, node: str) -> Measurement:
    """Maximum gain magnitude in dB across the frequency grid."""
    return Measurement(name=name, kind="ac_peak_gain_db", node=node)


def ac_bandwidth(name: str, node: str) -> Measurement:
    """-3 dB bandwidth in Hz relative to the lowest-frequency gain
    (the highest grid frequency still within 3 dB)."""
    return Measurement(name=name, kind="ac_bandwidth_hz", node=node)


def _dc_value(measurement: Measurement, circuit, x) -> float:
    index = circuit.node_index(measurement.node)
    value = 0.0 if index < 0 else float(x[index])
    if measurement.kind == "dc_differential":
        ref = circuit.node_index(measurement.ref)
        value -= 0.0 if ref < 0 else float(x[ref])
    return value


def _ac_value(measurement: Measurement, circuit, frequencies,
              solutions) -> float:
    index = circuit.node_index(measurement.node)
    if index < 0:
        magnitude = np.zeros(len(frequencies))
    else:
        magnitude = np.abs(solutions[:, index])
    gain_db = 20.0 * np.log10(np.maximum(magnitude, 1e-300))
    if measurement.kind == "ac_peak_gain_db":
        return float(np.max(gain_db))
    if measurement.kind == "ac_bandwidth_hz":
        within = gain_db >= gain_db[0] - 3.0
        # The highest grid frequency still inside the 3 dB window
        # before the first drop-out (monotone roll-off assumption).
        edge = int(np.argmin(within)) - 1 if not bool(np.all(within)) \
            else len(frequencies) - 1
        return float(frequencies[max(edge, 0)])
    if measurement.frequency is None:
        return float(gain_db[0])
    grid = np.asarray(frequencies, dtype=float)
    return float(gain_db[int(np.argmin(np.abs(grid
                                              - measurement.frequency)))])


class _Group:
    """One derived corner deck: its text and compiled evaluators."""

    __slots__ = ("deck_text", "dc", "ac", "circuit")

    def __init__(self, deck_text, dc, ac, circuit):
        self.deck_text = deck_text
        self.dc = dc
        self.ac = ac
        self.circuit = circuit


class CornerEvaluator:
    """Batch-capable, picklable corner evaluation function (see module
    docstring).  ``fn(corner.values) -> outcome dict`` with the blocked
    fast path under ``evaluate_batch``."""

    supports_batch = True

    @staticmethod
    def preferred_chunk_size(count: int) -> int:
        """Blocked evaluation wants few large chunks (cf.
        :meth:`repro.sweep.batched._BlockedDeckSweep.preferred_chunk_size`)."""
        return max(1, math.ceil(count / 8))

    def __init__(self, deck: str, corners: CornerSet, measurements,
                 rules=DEFAULT_STRESS_RULES, frequencies=None,
                 engine: str | None = None):
        if not isinstance(deck, str) or not deck.strip():
            raise VerificationError(
                "CornerEvaluator takes deck text (str); pass the netlist "
                "source so the evaluator stays picklable"
            )
        if not isinstance(corners, CornerSet):
            raise VerificationError(
                f"CornerEvaluator needs a CornerSet, got "
                f"{type(corners).__name__}"
            )
        self._deck_text = deck
        self._corners = corners
        self._measurements = tuple(measurements)
        if not self._measurements:
            raise VerificationError(
                "qualification needs at least one measurement"
            )
        self._rules = tuple(rules)
        self._frequencies_arg = (
            None if frequencies is None
            else tuple(float(f) for f in frequencies)
        )
        self._engine_arg = engine
        self._deck_axes = corners.deck_axes()
        self._source_axes = corners.source_axes()
        self._wants_ac = any(m.analysis == "ac"
                             for m in self._measurements)
        self._base = None
        self._tolerances = None
        self._gmin = None
        self._frequencies = None
        self._groups: dict[tuple, _Group] = {}
        self._lock = threading.Lock()

    # -- pickling ------------------------------------------------------------

    def __getstate__(self):
        return {
            "deck": self._deck_text,
            "corners": self._corners,
            "measurements": self._measurements,
            "rules": self._rules,
            "frequencies": self._frequencies_arg,
            "engine": self._engine_arg,
        }

    def __setstate__(self, state):
        self.__init__(state["deck"], state["corners"],
                      state["measurements"], rules=state["rules"],
                      frequencies=state["frequencies"],
                      engine=state["engine"])

    @property
    def __cache_tag__(self) -> str:
        hasher = hashlib.sha256(self._deck_text.encode())
        hasher.update(repr(self._corners.to_dict()).encode())
        hasher.update(repr(self._measurements).encode())
        hasher.update(repr(self._rules).encode())
        hasher.update(repr(self._frequencies_arg).encode())
        hasher.update(repr(self._engine_arg).encode())
        return f"repro.verify.CornerEvaluator#{hasher.hexdigest()[:16]}"

    # -- lazy compile --------------------------------------------------------

    def _ensure_base(self) -> None:
        if self._base is not None:
            return
        from ..spice.parser import parse_deck
        from ..spice.runner import _deck_tolerances

        deck = parse_deck(self._deck_text)
        self._tolerances, self._gmin = _deck_tolerances(deck)
        if self._frequencies_arg is not None:
            self._frequencies = np.asarray(self._frequencies_arg,
                                           dtype=float)
        elif self._wants_ac:
            from ..spice.ac import frequency_grid

            card = next((a for a in deck.analyses if a.kind == "ac"),
                        None)
            if card is None:
                raise VerificationError(
                    "AC measurements need a frequency grid: pass "
                    "frequencies=... (Hz) or give the deck an .AC card"
                )
            self._frequencies = frequency_grid(
                card.args["start"], card.args["stop"],
                card.args["points"], card.args["sweep"],
            )
        self._base = deck

    def _group_key(self, params: dict) -> tuple:
        try:
            return tuple(float(params[axis.name])
                         for axis in self._deck_axes)
        except KeyError as exc:
            raise VerificationError(
                f"corner point is missing deck-level axis {exc}; points "
                "must carry every axis of the corner set"
            ) from None

    def _source_params(self, params: dict) -> dict:
        out = {}
        for axis in self._source_axes:
            try:
                out[axis.target] = float(params[axis.name])
            except KeyError:
                raise VerificationError(
                    f"corner point is missing source axis "
                    f"{axis.name!r}"
                ) from None
        return out

    def _derived_deck(self, key: tuple) -> str:
        """The corner deck for one deck-level value combination."""
        if not key:
            return self._deck_text
        from ..devices.temperature import celsius
        from ..spice.serialize import circuit_to_deck
        from ..spice.temperature import circuit_at_temperature
        from ..spice.elements.capacitor import Capacitor
        from ..spice.elements.inductor import Inductor
        from ..spice.elements.resistor import Resistor
        from ..spice.netlist import Circuit

        circuit = self._base.circuit
        title = circuit.title or "corner deck"
        for axis, value in zip(self._deck_axes, key):
            if axis.kind == "temperature":
                circuit = circuit_at_temperature(circuit, celsius(value))
            else:
                kinds = {"R": Resistor, "C": Capacitor, "L": Inductor}
                cls = kinds[axis.target]
                scaled = Circuit(circuit.title)
                for element in circuit:
                    if isinstance(element, cls):
                        if cls is Resistor:
                            scaled.add(Resistor(
                                element.name, element.nodes,
                                float(element.resistance) * value))
                        elif cls is Capacitor:
                            scaled.add(Capacitor(
                                element.name, element.nodes,
                                float(element.capacitance) * value,
                                ic=element.ic))
                        else:
                            scaled.add(Inductor(
                                element.name, element.nodes,
                                float(element.inductance) * value,
                                ic=element.ic))
                    else:
                        scaled.add(element)
                circuit = scaled
        tag = "/".join(
            f"{axis.name}={value:g}"
            for axis, value in zip(self._deck_axes, key)
        )
        return circuit_to_deck(circuit, title=f"{title} [{tag}]")

    def _group(self, key: tuple) -> _Group:
        group = self._groups.get(key)
        if group is not None:
            return group
        self._ensure_base()
        deck_text = self._derived_deck(key)
        dc = BlockedDCSweep(
            deck_text, tolerances=self._tolerances, gmin=self._gmin,
            engine=self._engine_arg,
        )
        dc._ensure()
        ac = None
        if self._wants_ac:
            ac = BlockedACSweep(
                deck_text,
                frequencies=tuple(float(f) for f in self._frequencies),
                tolerances=self._tolerances, gmin=self._gmin,
                engine=self._engine_arg,
            )
            ac._ensure()
        group = _Group(deck_text, dc, ac, dc._circuit)
        self._groups[key] = group
        return group

    def prime(self) -> int:
        """Compile every corner deck up front (the service's
        compile-once contract); returns the group count."""
        with self._lock:
            self._ensure_base()
            keys = {self._group_key(corner.values)
                    for corner in self._corners}
            for key in sorted(keys):
                self._group(key)
            return len(self._groups)

    def compilations(self) -> int:
        """Summed engine compile counter across every corner deck —
        the service's recompile guard watches this stay flat."""
        with self._lock:
            total = 0
            for group in self._groups.values():
                for evaluator in (group.dc, group.ac):
                    engine = getattr(evaluator, "_engine", None)
                    if engine is not None:
                        total += engine.stats.compilations
            return total

    # -- outcome reduction ---------------------------------------------------

    def _outcome(self, group: _Group, x, ac_solutions) -> dict:
        measurements = {}
        for measurement in self._measurements:
            if measurement.analysis == "dc":
                measurements[measurement.name] = _dc_value(
                    measurement, group.circuit, x)
            else:
                measurements[measurement.name] = _ac_value(
                    measurement, group.circuit, self._frequencies,
                    ac_solutions)
        quantities = device_quantities(group.circuit, x)
        violations = check_stress(group.circuit, x, self._rules,
                                  quantities=quantities)
        return {
            "measurements": measurements,
            "quantities": quantities,
            "violations": tuple(violations),
        }

    # -- evaluation ----------------------------------------------------------

    def __call__(self, params: dict, attempt: int = 0) -> dict:
        """Scalar path: one corner through the group's full solve."""
        with self._lock:
            group = self._group(self._group_key(params))
            source_params = self._source_params(params)
            x = group.dc(source_params, attempt=attempt)
            solutions = None
            if group.ac is not None:
                solutions = group.ac(source_params, attempt=attempt)
            return self._outcome(group, x, solutions)

    def evaluate_batch(self, chunk_params: list) -> list:
        """Blocked path: lanes grouped by corner deck, each group solved
        through the blocked DC/AC evaluators' stacked fast paths.
        Returns ``[(outcome, error), ...]`` aligned with the chunk —
        per-lane errors identical to what the scalar path raises."""
        with self._lock:
            results: list = [None] * len(chunk_params)
            lanes_by_key: dict[tuple, list[int]] = {}
            for k, params in enumerate(chunk_params):
                try:
                    key = self._group_key(params)
                except VerificationError as error:
                    results[k] = (None, error)
                    continue
                lanes_by_key.setdefault(key, []).append(k)
            for key, lanes in lanes_by_key.items():
                group = self._group(key)
                source_params = []
                kept = []
                for k in lanes:
                    try:
                        source_params.append(
                            self._source_params(chunk_params[k]))
                        kept.append(k)
                    except VerificationError as error:
                        results[k] = (None, error)
                if not kept:
                    continue
                dc_results = group.dc.evaluate_batch(source_params)
                ac_results = None
                if group.ac is not None:
                    ac_results = group.ac.evaluate_batch(source_params)
                for j, k in enumerate(kept):
                    x, error = dc_results[j]
                    if error is not None:
                        results[k] = (None, error)
                        continue
                    solutions = None
                    if ac_results is not None:
                        solutions, error = ac_results[j]
                        if error is not None:
                            results[k] = (None, error)
                            continue
                    # Per-lane capture keeps reduction errors (bad
                    # measurement node, ...) identical to what the
                    # scalar path raises for that corner, instead of
                    # failing the whole chunk.
                    try:
                        results[k] = (
                            self._outcome(group, x, solutions), None)
                    except Exception as error:  # noqa: BLE001
                        results[k] = (None, error)
            return results


def _failure_record(failed) -> dict:
    return {
        "error": failed.error,
        "error_type": failed.error_type,
        "attempts": failed.attempts,
        "report": (failed.report.summary()
                   if failed.report is not None else None),
    }


def qualify_deck(
    deck: str,
    corners: CornerSet,
    measurements,
    *,
    name: str = "deck",
    rules=DEFAULT_STRESS_RULES,
    frequencies=None,
    executor=None,
    jobs=None,
    chunk_size=None,
    cache=None,
    on_error: str = "retry",
    retries: int = 2,
    batch="auto",
    engine: str | None = None,
    evaluator: CornerEvaluator | None = None,
    stats_sink: dict | None = None,
) -> QualificationReport:
    """Qualify one deck: every corner through the sweep engine.

    ``evaluator`` lets a caller (the service) supply a pre-compiled
    :class:`CornerEvaluator` so repeated qualifications reuse the
    per-corner compiled engines; otherwise one is built from the
    arguments.  ``stats_sink["sweep"]`` receives the run's
    :class:`~repro.sweep.SweepStats` when a dict is passed.
    """
    if evaluator is None:
        evaluator = CornerEvaluator(
            deck, corners, measurements, rules=rules,
            frequencies=frequencies, engine=engine,
        )
    started = time.perf_counter()
    result = run_sweep(
        evaluator,
        [dict(corner.values) for corner in corners],
        executor=executor,
        jobs=jobs,
        chunk_size=chunk_size,
        cache=cache,
        on_error=on_error,
        retries=retries,
        batch=batch,
    )
    wall = time.perf_counter() - started
    if stats_sink is not None:
        stats_sink["sweep"] = result.stats
    failures = {failure.index: failure for failure in result.failures}
    outcomes = []
    for corner, value in zip(corners, result.values):
        if value is None:
            outcomes.append(CornerOutcome(
                corner=corner.name,
                values=dict(corner.values),
                measurements=None,
                failure=_failure_record(failures[corner.index]),
            ))
        else:
            outcomes.append(CornerOutcome(
                corner=corner.name,
                values=dict(corner.values),
                measurements=dict(value["measurements"]),
                quantities=value["quantities"],
                violations=tuple(value["violations"]),
            ))
    stats = {
        "executor": result.stats.executor,
        "workers": result.stats.workers,
        "points": result.stats.points,
        "evaluated": result.stats.evaluated,
        "cache_hits": result.stats.cache_hits,
        "failures": result.stats.failures,
        "retries": result.stats.retries,
        "wall_seconds": wall,
        "corners_per_second": (len(result.values) / wall
                               if wall > 0 else 0.0),
        "nominal_corner": corners.nominal().name,
    }
    return QualificationReport(
        name=name,
        axes=[axis.to_dict() for axis in corners.axes],
        outcomes=outcomes,
        rules=[rule.to_dict() for rule in
               (evaluator._rules if evaluator is not None else rules)],
        stats=stats,
    )


def default_corners(deck: str,
                    temperatures_c=(-20.0, 27.0, 85.0),
                    supply_tol: float = 0.1,
                    passive_tol: float = 0.1) -> CornerSet:
    """A sensible corner set derived from the deck itself: temperature,
    resistor-scale, and a min/nom/max axis on the supply (the
    independent DC voltage source with the largest magnitude)."""
    from ..spice.elements.sources import DC, VoltageSource
    from ..spice.parser import parse_deck

    circuit = parse_deck(deck).circuit
    supply = None
    for element in circuit:
        if isinstance(element, VoltageSource) \
                and type(element.waveform) is DC:
            level = float(element.source_value(None))
            if supply is None or abs(level) > abs(supply[1]):
                supply = (element.name, level)
    sources = {}
    if supply is not None and supply[1] != 0.0:
        sources[supply[0]] = (supply[1], supply_tol)
    return corners_from_tolerances(
        sources,
        temperatures_c=temperatures_c,
        passive_tols={"R": passive_tol} if passive_tol else None,
    )


def default_measurements(deck: str) -> tuple:
    """Default measurement set derived from the deck: DC voltage of the
    conventional output nodes (``out``/``outp``/``outn``, else every
    node), plus low-frequency gain and -3 dB bandwidth of the first
    output when the deck carries an AC stimulus and an ``.AC`` card."""
    from ..spice.ac import ac_stimulus_rhs
    from ..spice.parser import parse_deck

    parsed = parse_deck(deck)
    circuit = parsed.circuit
    circuit.assign_indices()
    names = [n for n in circuit.nodes() if n != "0"]
    outputs = [n for n in ("out", "outp", "outn") if n in names]
    if not outputs:
        outputs = sorted(names)
    measurements = [dc_voltage(f"v_{node}", node) for node in outputs]
    has_stimulus = bool(np.any(
        ac_stimulus_rhs(circuit, circuit.num_unknowns)
    ))
    has_grid = any(a.kind == "ac" for a in parsed.analyses)
    if has_stimulus and has_grid:
        measurements.append(ac_gain(f"gain_db_{outputs[0]}", outputs[0]))
        measurements.append(
            ac_bandwidth(f"bw_hz_{outputs[0]}", outputs[0]))
    return tuple(measurements)


def qualify_cell(
    cell,
    corners: CornerSet | None = None,
    measurements=None,
    **kwargs,
) -> QualificationReport:
    """Qualify a cell's transistor-level schematic across corners.

    Defaults are derived from the schematic (:func:`default_corners`,
    :func:`default_measurements`); keyword arguments pass through to
    :func:`qualify_deck`.  Store the result with
    :meth:`repro.celldb.Cell.record_qualification` to make the re-use
    lookup rank this cell by worst-corner headroom.
    """
    deck = getattr(cell, "schematic", "") or ""
    if not deck.strip():
        raise VerificationError(
            f"cell {getattr(cell, 'name', cell)!r} has no "
            "transistor-level schematic to qualify"
        )
    if corners is None:
        corners = default_corners(deck)
    if measurements is None:
        measurements = default_measurements(deck)
    kwargs.setdefault("name", getattr(cell, "name", "cell"))
    return qualify_deck(deck, corners, measurements, **kwargs)

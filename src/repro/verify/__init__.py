"""Corner/stress qualification for analog cells.

The verification flow the DAC-96 methodology assumes but the paper only
sketches: expand component tolerances and temperature ranges into named
corner sets (:mod:`~repro.verify.corners`), fan every corner through the
fault-tolerant blocked sweep engine (:mod:`~repro.verify.harness`),
check device stress ratings at each solved operating point
(:mod:`~repro.verify.stress`), and fold it all into a datasheet-style
:class:`~repro.verify.report.QualificationReport` whose worst-corner
envelope feeds cell re-use ranking.
"""

from .corners import (
    AXIS_KINDS,
    SCALE_TARGETS,
    Corner,
    CornerAxis,
    CornerSet,
    VerificationError,
    corners_from_tolerances,
    scale_axis,
    source_axis,
    temperature_axis,
)
from .harness import (
    MEASUREMENT_KINDS,
    CornerEvaluator,
    Measurement,
    ac_bandwidth,
    ac_gain,
    ac_peak_gain,
    dc_differential,
    dc_voltage,
    default_corners,
    default_measurements,
    qualify_cell,
    qualify_deck,
)
from .report import CornerOutcome, QualificationReport, SpecHeadroom
from .stress import (
    DEFAULT_STRESS_RULES,
    DEVICE_QUANTITIES,
    StressRule,
    StressViolation,
    check_stress,
    device_quantities,
    load_stress_rules,
)

__all__ = [
    "AXIS_KINDS",
    "SCALE_TARGETS",
    "Corner",
    "CornerAxis",
    "CornerSet",
    "VerificationError",
    "corners_from_tolerances",
    "scale_axis",
    "source_axis",
    "temperature_axis",
    "MEASUREMENT_KINDS",
    "CornerEvaluator",
    "Measurement",
    "ac_bandwidth",
    "ac_gain",
    "ac_peak_gain",
    "dc_differential",
    "dc_voltage",
    "default_corners",
    "default_measurements",
    "qualify_cell",
    "qualify_deck",
    "CornerOutcome",
    "QualificationReport",
    "SpecHeadroom",
    "DEFAULT_STRESS_RULES",
    "DEVICE_QUANTITIES",
    "StressRule",
    "StressViolation",
    "check_stress",
    "device_quantities",
    "load_stress_rules",
]

"""Reproduction of "Design Methodology for Analog High Frequency ICs"
(Miyahara, Oumi, Moriyama — Toshiba, DAC 1996).

Subpackages:

* :mod:`repro.spice` — SPICE-class circuit simulator (MNA, DC/AC/transient)
* :mod:`repro.devices` — Gummel-Poon BJT model and fT analysis
* :mod:`repro.geometry` — geometry-dependent model parameter generation
  (the paper's Section 4 contribution)
* :mod:`repro.measurement` — synthetic device measurement + extraction
* :mod:`repro.ahdl` — analog hardware description language
* :mod:`repro.behavioral` — behavioral (phasor-domain) system simulation
* :mod:`repro.rfsystems` — tuners, image rejection, ring oscillators
* :mod:`repro.celldb` — analog cell reuse database (Section 3)
* :mod:`repro.core` — top-down design flow (Section 2)
* :mod:`repro.sweep` — parallel sweep / Monte-Carlo orchestration
* :mod:`repro.optimize` — spec-driven design optimization closing the
  top-down loop (``repro optimize``)
"""

__version__ = "1.0.0"

from . import errors, units

__all__ = ["errors", "units", "__version__"]

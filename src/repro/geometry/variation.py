"""Process variation and Monte-Carlo sampling.

Section 2.2: "IC circuit designers have to examine the performance of
this system taking IC process variations into account."  This module
provides the machinery: lognormal perturbation of the process file's
electrical densities (run-to-run variation), generation of varied device
models for a shape, and mismatch sampling for the behavioral imbalance
parameters that Fig. 5 sweeps deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..devices.parameters import GummelPoonParameters
from ..errors import GeometryError
from .design_rules import MaskDesignRules
from .generator import ModelParameterGenerator
from .process import ProcessData
from .shape import TransistorShape


@dataclass(frozen=True)
class ProcessVariation:
    """1-sigma relative spreads of the process electrical parameters.

    Defaults are typical for a mid-90s bipolar line: implant-dose-driven
    quantities (sheet resistances, saturation currents) vary more than
    oxide/junction capacitances.
    """

    sigma_js: float = 0.12  #: saturation-current densities
    sigma_jb: float = 0.10  #: base-current densities (beta spread)
    sigma_sheet: float = 0.08  #: sheet resistances
    sigma_contact: float = 0.15  #: contact resistivities
    sigma_cap: float = 0.05  #: junction capacitance densities
    sigma_tf: float = 0.06  #: transit time

    #: field name -> which sigma applies
    FIELD_SIGMAS = {
        "js_area": "sigma_js", "js_perimeter": "sigma_js",
        "jse_perimeter": "sigma_js", "jsc_perimeter": "sigma_js",
        "jkf": "sigma_js", "jtf": "sigma_js",
        "jb_area": "sigma_jb", "jb_perimeter": "sigma_jb",
        "rsb_intrinsic": "sigma_sheet", "rsb_extrinsic": "sigma_sheet",
        "rsc_buried": "sigma_sheet",
        "rb_contact": "sigma_contact", "re_contact": "sigma_contact",
        "rc_epi": "sigma_contact", "rc_sinker": "sigma_contact",
        "cje_area": "sigma_cap", "cje_perimeter": "sigma_cap",
        "cjc_area": "sigma_cap", "cjc_perimeter": "sigma_cap",
        "cjs_area": "sigma_cap", "cjs_perimeter": "sigma_cap",
        "tf": "sigma_tf",
    }

    def sample_process(self, nominal: ProcessData,
                       rng: np.random.Generator) -> ProcessData:
        """One process realization: lognormal multiplicative spread."""
        changes = {}
        for field_name, sigma_name in self.FIELD_SIGMAS.items():
            sigma = getattr(self, sigma_name)
            if sigma <= 0:
                continue
            factor = float(rng.lognormal(mean=0.0, sigma=sigma))
            changes[field_name] = getattr(nominal, field_name) * factor
        return replace(nominal, **changes)


@dataclass(frozen=True)
class MismatchSpec:
    """1-sigma mismatch of the Fig. 4 tuner's matching-critical knobs."""

    phase_error_sigma_deg: float = 1.5  #: per 90-degree shifter
    gain_error_sigma: float = 0.02  #: fractional path gain


@dataclass
class MonteCarloModels:
    """Varied Gummel-Poon models for one shape across process samples.

    Under a fault-tolerant run (``on_error="skip"``/``"retry"``),
    ``models`` holds only the successfully generated samples and
    ``failures`` the :class:`~repro.sweep.FailedPoint` records of the
    rest — spread statistics are then over the surviving population.
    """

    shape: TransistorShape
    models: list[GummelPoonParameters]
    failures: list = field(default_factory=list)

    def parameter_values(self, name: str) -> np.ndarray:
        return np.array([getattr(m, name) for m in self.models])

    def spread(self, name: str) -> float:
        """Relative standard deviation of a parameter over the samples."""
        values = self.parameter_values(name)
        mean = float(np.mean(values))
        if mean == 0:
            return 0.0
        return float(np.std(values) / abs(mean))


def _mc_model_point(
    params: dict,
    rng: np.random.Generator | None = None,
    *,
    shape: TransistorShape,
    variation: ProcessVariation,
    nominal: ProcessData,
    rules: MaskDesignRules,
) -> GummelPoonParameters:
    """One process realization -> generated model (module-level so it
    pickles for the process-pool executor)."""
    process = variation.sample_process(nominal, rng)
    generator = ModelParameterGenerator(process, rules)
    return generator.generate(shape)


def monte_carlo_models(
    shape: TransistorShape | str,
    samples: int,
    variation: ProcessVariation | None = None,
    nominal: ProcessData | None = None,
    rules: MaskDesignRules | None = None,
    seed: int | np.random.SeedSequence = 1996,
    executor=None,
    jobs: int | None = None,
    cache=None,
    on_error: str = "raise",
    retries: int = 2,
) -> MonteCarloModels:
    """Generate ``samples`` varied device models for a shape.

    Each sample is a fresh process realization pushed through the
    geometry generator (uncalibrated: the variation represents the fab,
    not the measurement).

    ``seed`` (an int or a :class:`numpy.random.SeedSequence`) pins the
    sample stream: sample ``i`` draws from its own
    ``SeedSequence(seed).spawn()`` child, so the population is a
    function of ``(seed, i)`` alone.  Parallel execution — any
    ``executor``/``jobs`` combination (see
    :func:`repro.sweep.run_sweep`) — therefore preserves the sample
    stream and returns bit-identical populations.
    """
    if samples < 1:
        raise GeometryError("need at least one Monte-Carlo sample")
    if isinstance(shape, str):
        shape = TransistorShape.from_name(shape)
    variation = variation or ProcessVariation()
    nominal = nominal or ProcessData()
    rules = rules or MaskDesignRules()

    import functools

    from ..sweep import MonteCarloSampler, run_sweep

    result = run_sweep(
        functools.partial(
            _mc_model_point, shape=shape, variation=variation,
            nominal=nominal, rules=rules,
        ),
        MonteCarloSampler(samples, seed=seed),
        executor=executor,
        jobs=jobs,
        cache=cache,
        on_error=on_error,
        retries=retries,
    )
    failed = set(result.failed_indices())
    return MonteCarloModels(
        shape=shape,
        models=[m for i, m in enumerate(result.values) if i not in failed],
        failures=list(result.failures),
    )


@dataclass(frozen=True)
class YieldReport:
    """Pass fraction of a Monte-Carlo population against a spec.

    ``failures`` holds the :class:`~repro.sweep.FailedPoint` records of
    samples that could not be evaluated at all (fault-tolerant runs);
    they count against the yield — an unevaluable sample is not a pass.
    """

    samples: int
    passed: int
    values: tuple[float, ...]
    failures: tuple = ()

    @property
    def yield_fraction(self) -> float:
        return self.passed / self.samples if self.samples else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q))

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))


def _mc_irr_point(
    params: dict,
    rng: np.random.Generator | None = None,
    *,
    mismatch: MismatchSpec,
) -> float:
    """One mismatch draw -> closed-form IRR (module-level so it pickles
    for the process-pool executor)."""
    from ..rfsystems.image_rejection import image_rejection_ratio_db

    phase = (rng.normal(0.0, mismatch.phase_error_sigma_deg)
             + rng.normal(0.0, mismatch.phase_error_sigma_deg))
    gain = rng.normal(0.0, mismatch.gain_error_sigma)
    return image_rejection_ratio_db(phase, gain)


def monte_carlo_image_rejection(
    samples: int,
    mismatch: MismatchSpec | None = None,
    irr_spec_db: float = 30.0,
    seed: int | np.random.SeedSequence = 1996,
    executor=None,
    jobs: int | None = None,
    cache=None,
    on_error: str = "raise",
    retries: int = 2,
) -> YieldReport:
    """Monte-Carlo yield of the Fig. 4 mixer against an IRR spec.

    Draws the two shifters' phase errors and the path gain error from
    the mismatch distribution and evaluates the closed-form IRR — the
    statistical version of the paper's Fig. 5 read-off.

    Seeding is per-sample: sample ``i`` draws from the ``i``-th child of
    ``SeedSequence(seed)``, so the stream depends only on ``(seed, i)``
    and parallel runs (``executor``/``jobs``, see
    :func:`repro.sweep.run_sweep`) are bit-identical to serial ones.
    """
    if samples < 1:
        raise GeometryError("need at least one Monte-Carlo sample")
    mismatch = mismatch or MismatchSpec()

    import functools

    from ..sweep import MonteCarloSampler, run_sweep

    result = run_sweep(
        functools.partial(_mc_irr_point, mismatch=mismatch),
        MonteCarloSampler(samples, seed=seed),
        executor=executor,
        jobs=jobs,
        cache=cache,
        on_error=on_error,
        retries=retries,
    )
    values = [float(v) for v in result.values if v is not None]
    passed = sum(1 for v in values if v >= irr_spec_db)
    return YieldReport(samples=samples, passed=passed,
                       values=tuple(values),
                       failures=tuple(result.failures))

"""Geometry-dependent bipolar model parameter generation (paper Section 4)."""

from .shape import (
    FIG8_SHAPES,
    FIG9_SHAPES,
    TABLE1_SHAPES,
    TransistorShape,
)
from .design_rules import MaskDesignRules
from .process import ProcessData
from .layout import (
    LayoutReport,
    base_contact_resistance,
    collector_resistance,
    emitter_resistance,
    extrinsic_base_resistance,
    intrinsic_base_resistance,
    layout_report,
    xcjc_fraction,
)
from .reference import (
    REFERENCE_SHAPE_NAME,
    SILICON_SPREAD,
    ReferenceTransistor,
    default_reference,
)
from .generator import (
    CALIBRATED_PARAMETERS,
    ModelParameterGenerator,
    model_name_for_shape,
)
from .area_factor import AreaFactorScaler
from .selection import (
    DEFAULT_CANDIDATES,
    ShapeScore,
    ShapeSelection,
    current_for_shape,
    shape_for_current,
)
from .variation import (
    MismatchSpec,
    MonteCarloModels,
    ProcessVariation,
    YieldReport,
    monte_carlo_image_rejection,
    monte_carlo_models,
)

__all__ = [
    "TransistorShape",
    "FIG8_SHAPES",
    "FIG9_SHAPES",
    "TABLE1_SHAPES",
    "MaskDesignRules",
    "ProcessData",
    "LayoutReport",
    "layout_report",
    "intrinsic_base_resistance",
    "extrinsic_base_resistance",
    "base_contact_resistance",
    "emitter_resistance",
    "collector_resistance",
    "xcjc_fraction",
    "ReferenceTransistor",
    "default_reference",
    "REFERENCE_SHAPE_NAME",
    "SILICON_SPREAD",
    "ModelParameterGenerator",
    "model_name_for_shape",
    "CALIBRATED_PARAMETERS",
    "AreaFactorScaler",
    "ShapeScore",
    "ShapeSelection",
    "shape_for_current",
    "current_for_shape",
    "DEFAULT_CANDIDATES",
    "ProcessVariation",
    "MismatchSpec",
    "MonteCarloModels",
    "YieldReport",
    "monte_carlo_models",
    "monte_carlo_image_rejection",
]

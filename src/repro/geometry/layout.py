"""Layout arithmetic: from a transistor shape to geometry-dependent
electrical quantities.

This is the heart of the paper's Section 4: model parameters such as RB,
RE, RC, CJE, CJC and CJS "depend not only on the emitter area but also on
their perimeter and their specific device geometry".  Each function here
computes one such quantity from the shape, the mask design rules and the
process data.

Resistance formulas follow the classic distributed-base treatment
(Getreu, *Modeling the Bipolar Transistor*):

* intrinsic (pinched) base under a strip contacted on ONE side:
  ``Rsbi * W / (3 L)``; contacted on BOTH sides: ``Rsbi * W / (12 L)``
  (the 1/12 comes from the distributed current flowing half the width
  from each side);
* extrinsic base: sheet path from the contact stripe to the emitter
  edge, in parallel over all served emitter flanks;
* emitter: contact resistivity over emitter area;
* collector: vertical epi under the emitter, buried-layer lateral path,
  and sinker, in series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError
from .design_rules import MaskDesignRules
from .process import ProcessData
from .shape import TransistorShape


@dataclass(frozen=True)
class LayoutReport:
    """All geometry-derived quantities for one transistor shape."""

    shape: TransistorShape
    emitter_area: float  #: um^2
    emitter_perimeter: float  #: um
    base_area: float  #: um^2 (B-C junction)
    base_perimeter: float  #: um
    collector_area: float  #: um^2 (C-S junction)
    collector_perimeter: float  #: um
    rb_intrinsic: float  #: ohm
    rb_extrinsic: float  #: ohm
    rb_contact: float  #: ohm
    re_ohmic: float  #: ohm
    rc_ohmic: float  #: ohm
    xcjc: float  #: fraction of B-C capacitance under the emitter

    @property
    def rb_total(self) -> float:
        return self.rb_intrinsic + self.rb_extrinsic + self.rb_contact

    @property
    def rb_minimum(self) -> float:
        """Base resistance with the intrinsic part fully modulated away."""
        return self.rb_extrinsic + self.rb_contact


def intrinsic_base_resistance(
    shape: TransistorShape, process: ProcessData
) -> float:
    """Pinched-base resistance under the emitter strips (ohm)."""
    sides = shape.double_base_sides()
    sides_per_strip = max(1, min(2, sides // shape.emitter_strips))
    divisor = 12.0 if sides_per_strip == 2 else 3.0
    per_strip = (
        process.rsb_intrinsic
        * shape.emitter_width
        / (divisor * shape.emitter_length)
    )
    return per_strip / shape.emitter_strips


def extrinsic_base_resistance(
    shape: TransistorShape, rules: MaskDesignRules, process: ProcessData
) -> float:
    """Extrinsic base sheet resistance from contacts to emitter edge (ohm)."""
    path = rules.extrinsic_base_path(shape)
    per_flank = process.rsb_extrinsic * path / shape.emitter_length
    flanks = shape.double_base_sides()
    return per_flank / flanks


def base_contact_resistance(
    shape: TransistorShape, process: ProcessData
) -> float:
    """Base contact stripe resistance, parallel over stripes (ohm)."""
    per_stripe = process.rb_contact / shape.emitter_length
    return per_stripe / shape.base_stripes


def emitter_resistance(shape: TransistorShape, process: ProcessData) -> float:
    """Emitter contact + vertical resistance (ohm)."""
    return process.re_contact / shape.emitter_area


def collector_resistance(
    shape: TransistorShape, rules: MaskDesignRules, process: ProcessData
) -> float:
    """Collector series resistance: epi + buried layer + sinker (ohm)."""
    vertical = process.rc_epi / shape.emitter_area
    lateral_path = rules.base_width(shape) / 2.0 + rules.collector_base_spacing
    buried = process.rsc_buried * lateral_path / rules.base_length(shape)
    sinker = process.rc_sinker / rules.base_length(shape)
    return vertical + buried + sinker


def xcjc_fraction(shape: TransistorShape, rules: MaskDesignRules) -> float:
    """Fraction of the B-C junction lying under the emitter strips."""
    fraction = shape.emitter_area / rules.base_area(shape)
    return min(max(fraction, 0.0), 1.0)


def layout_report(
    shape: TransistorShape,
    rules: MaskDesignRules | None = None,
    process: ProcessData | None = None,
) -> LayoutReport:
    """Compute every geometry-derived quantity for ``shape``."""
    rules = rules or MaskDesignRules()
    process = process or ProcessData()
    rules.check_shape(shape)
    return LayoutReport(
        shape=shape,
        emitter_area=shape.emitter_area,
        emitter_perimeter=shape.emitter_perimeter,
        base_area=rules.base_area(shape),
        base_perimeter=rules.base_perimeter(shape),
        collector_area=rules.collector_area(shape),
        collector_perimeter=rules.collector_perimeter(shape),
        rb_intrinsic=intrinsic_base_resistance(shape, process),
        rb_extrinsic=extrinsic_base_resistance(shape, rules, process),
        rb_contact=base_contact_resistance(shape, process),
        re_ohmic=emitter_resistance(shape, process),
        rc_ohmic=collector_resistance(shape, rules, process),
        xcjc=xcjc_fraction(shape, rules),
    )

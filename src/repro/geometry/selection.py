"""Transistor shape selection for a given operating current.

The paper's Section 4 workflow, automated: "In most of analog ICs, the
current needed for a circuit has been decided considering the radiation
from the IC packages.  Once the circuit topology and operating current
are determined, the transistor shape will then be selected according to
that current."

Given the operating collector current, :func:`shape_for_current` scores
candidate shapes by the fT their generated models deliver *at that
current* (optionally penalized by capacitive loading for switching
stages) and returns the ranked table — the decision the paper reads off
Fig. 9 and validates with Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..devices.ft import ft_at_ic
from ..errors import GeometryError
from .generator import ModelParameterGenerator
from .shape import TABLE1_SHAPES, TransistorShape


#: Default candidate family: the Fig. 8 taxonomy plus longer variants.
DEFAULT_CANDIDATES: tuple[str, ...] = TABLE1_SHAPES + (
    "N1.2-24D", "N1.2-48D",
)


@dataclass(frozen=True)
class ShapeScore:
    """One candidate's figures at the operating current."""

    shape: TransistorShape
    ft: float  #: transition frequency at the operating current (Hz)
    load_capacitance: float  #: CJE + 2*CJC + CJS parasitic load (F)
    rb_delay: float  #: RB * load_capacitance input-pole delay (s)
    figure_of_merit: float  #: 1/total-delay, what the ranking maximizes

    @property
    def name(self) -> str:
        return self.shape.name

    @property
    def total_delay(self) -> float:
        return 1.0 / self.figure_of_merit


@dataclass(frozen=True)
class ShapeSelection:
    """Ranked outcome of a shape search."""

    operating_current: float
    scores: tuple[ShapeScore, ...]  #: best first

    @property
    def best(self) -> ShapeScore:
        return self.scores[0]

    def table(self) -> str:
        lines = [
            f"  shape selection at Ic = "
            f"{self.operating_current * 1e3:.2f} mA:",
            "  rank  shape        fT [GHz]   RB-delay [ps]   "
            "total delay [ps]",
        ]
        for rank, score in enumerate(self.scores, start=1):
            lines.append(
                f"  {rank:4d}  {score.name:11s} {score.ft / 1e9:8.2f}"
                f"   {score.rb_delay * 1e12:11.1f}"
                f"   {score.total_delay * 1e12:14.1f}"
            )
        return "\n".join(lines)


def shape_for_current(
    ic: float,
    generator: ModelParameterGenerator,
    candidates: Sequence[str | TransistorShape] = DEFAULT_CANDIDATES,
    vce: float = 3.0,
    loading_weight: float = 1.0,
) -> ShapeSelection:
    """Rank candidate shapes for operation at collector current ``ic``.

    Scores each shape by an estimated switching delay

        tau = 1/(2*pi*fT(ic)) + loading_weight * RB*(CJE + 2*CJC + CJS)

    and ranks by 1/tau.  The first term is the intrinsic speed at the
    given current (the Fig. 9 read-off, punishing undersized devices in
    Kirk roll-off); the second is the base-resistance input pole with
    Miller-doubled feedback capacitance (punishing single-base and
    wide-emitter layouts).  With ``loading_weight = 1`` this reproduces
    the paper's Table 1 ordering among the Fig. 8 shapes at the ring's
    operating current; ``loading_weight = 0`` ranks by fT alone.
    """
    if ic <= 0:
        raise GeometryError("operating current must be positive")
    if not candidates:
        raise GeometryError("need at least one candidate shape")
    if loading_weight < 0:
        raise GeometryError("loading_weight must be non-negative")

    scores = []
    for candidate in candidates:
        shape = (candidate if isinstance(candidate, TransistorShape)
                 else TransistorShape.from_name(candidate))
        model = generator.generate(shape)
        point = ft_at_ic(model, ic, vce)
        load = model.CJE + 2.0 * model.CJC + model.CJS
        rb_delay = model.RB * load
        tau = 1.0 / (2.0 * 3.141592653589793 * point.ft)
        tau += loading_weight * rb_delay
        scores.append(ShapeScore(
            shape=shape, ft=point.ft, load_capacitance=load,
            rb_delay=rb_delay, figure_of_merit=1.0 / tau,
        ))
    scores.sort(key=lambda s: s.figure_of_merit, reverse=True)
    return ShapeSelection(operating_current=ic, scores=tuple(scores))


def current_for_shape(
    shape: TransistorShape | str,
    generator: ModelParameterGenerator,
    vce: float = 3.0,
) -> float:
    """The collector current a shape *wants*: its fT-peak current.

    The inverse question — "this device is best used at which current?"
    — used when the current budget is still open.
    """
    from ..devices.ft import peak_ft

    if isinstance(shape, str):
        shape = TransistorShape.from_name(shape)
    model = generator.generate(shape)
    return peak_ft(model, 1e-5, 5e-2, points=81).ic

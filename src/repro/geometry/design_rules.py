"""Mask design rules for the fictitious bipolar process.

The paper's generator "needs the transistor process data and its mask
design rule".  Toshiba's rules are proprietary; this module provides a
physically sensible 0.8 um double-poly bipolar rule set.  The values fix
the *layout arithmetic* (how big a device footprint a given emitter shape
implies), which is what the geometry-dependent parameters consume — the
shape dependence survives any reasonable choice of absolute numbers.

All dimensions in micrometres.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError
from .shape import TransistorShape


@dataclass(frozen=True)
class MaskDesignRules:
    """Spacings and widths that determine a transistor's layout footprint."""

    name: str = "toshiba96-like-0.8um"
    emitter_base_spacing: float = 0.6  #: emitter edge to base contact edge
    base_contact_width: float = 0.8  #: width of one base contact stripe
    base_overhang: float = 0.8  #: base diffusion overhang past contacts
    base_end_extension: float = 1.0  #: base extension past emitter ends
    collector_base_spacing: float = 1.2  #: base diffusion to collector sinker
    collector_contact_width: float = 1.0  #: collector sinker/contact width
    isolation_spacing: float = 1.5  #: device edge to isolation wall
    min_feature: float = 0.8  #: minimum drawn feature

    def __post_init__(self):
        for attr in (
            "emitter_base_spacing", "base_contact_width", "base_overhang",
            "base_end_extension", "collector_base_spacing",
            "collector_contact_width", "isolation_spacing", "min_feature",
        ):
            if getattr(self, attr) <= 0:
                raise GeometryError(f"design rule {attr} must be positive")

    # -- layout arithmetic ------------------------------------------------------

    def check_shape(self, shape: TransistorShape) -> None:
        """Reject shapes that violate the minimum feature size."""
        if shape.emitter_width < self.min_feature * 0.9:
            raise GeometryError(
                f"emitter width {shape.emitter_width}um below minimum "
                f"feature {self.min_feature}um of rule set {self.name!r}"
            )
        if shape.emitter_length < self.min_feature:
            raise GeometryError(
                f"emitter strip length {shape.emitter_length}um below "
                f"minimum feature {self.min_feature}um"
            )

    def base_width(self, shape: TransistorShape) -> float:
        """Drawn base diffusion width across the strip direction (um).

        Emitter strips and base contact stripes interleave; each
        emitter-to-contact interface costs ``emitter_base_spacing`` and
        each contact stripe costs ``base_contact_width``, with the base
        diffusion overhanging the outermost features.
        """
        emitters = shape.emitter_strips * shape.emitter_width
        contacts = shape.base_stripes * self.base_contact_width
        interfaces = (shape.emitter_strips + shape.base_stripes - 1)
        spacings = interfaces * self.emitter_base_spacing
        return emitters + contacts + spacings + 2.0 * self.base_overhang

    def base_length(self, shape: TransistorShape) -> float:
        """Drawn base diffusion length along the strips (um)."""
        return shape.emitter_length + 2.0 * self.base_end_extension

    def base_area(self, shape: TransistorShape) -> float:
        """Base-collector junction area (um^2)."""
        return self.base_width(shape) * self.base_length(shape)

    def base_perimeter(self, shape: TransistorShape) -> float:
        """Base-collector junction perimeter (um)."""
        return 2.0 * (self.base_width(shape) + self.base_length(shape))

    def device_width(self, shape: TransistorShape) -> float:
        """Collector-island width including sinker and spacings (um)."""
        return (
            self.base_width(shape)
            + self.collector_base_spacing
            + self.collector_contact_width
            + 2.0 * self.isolation_spacing
        )

    def device_length(self, shape: TransistorShape) -> float:
        """Collector-island length (um)."""
        return self.base_length(shape) + 2.0 * self.isolation_spacing

    def collector_area(self, shape: TransistorShape) -> float:
        """Collector-substrate junction area (um^2)."""
        return self.device_width(shape) * self.device_length(shape)

    def collector_perimeter(self, shape: TransistorShape) -> float:
        """Collector-substrate junction perimeter (um)."""
        return 2.0 * (self.device_width(shape) + self.device_length(shape))

    def extrinsic_base_path(self, shape: TransistorShape) -> float:
        """Mean lateral path from a base contact to the emitter edge (um)."""
        return self.emitter_base_spacing + self.base_contact_width / 2.0

"""The SPICE emitter-area-factor baseline (what the paper improves on).

SPICE scales a reference model to another device size with a single
"area" multiplier: currents and capacitances multiply by area,
resistances divide by it.  The paper's Section 4 points out that RB, RE,
RC, CJE, CJC and CJS "depend not only on the emitter area but also on
their perimeter and their specific device geometry", so this scaling is
inaccurate for shape changes that alter the perimeter-to-area ratio or
the base-contact topology.

This module packages the baseline behind the same interface as
:class:`~repro.geometry.generator.ModelParameterGenerator` so benchmarks
can compare the two head-to-head (the ``abl1`` ablation in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.parameters import GummelPoonParameters
from .generator import model_name_for_shape
from .reference import ReferenceTransistor, default_reference
from .shape import TransistorShape


@dataclass
class AreaFactorScaler:
    """Scales a reference model by emitter-area ratio only."""

    reference: ReferenceTransistor = field(default_factory=default_reference)

    def area_factor(self, shape: TransistorShape | str) -> float:
        """Emitter-area ratio target/reference — SPICE's ``area`` operand."""
        if isinstance(shape, str):
            shape = TransistorShape.from_name(shape)
        return shape.emitter_area / self.reference.shape.emitter_area

    def generate(self, shape: TransistorShape | str) -> GummelPoonParameters:
        """The parameter set SPICE would effectively use for ``shape``."""
        if isinstance(shape, str):
            shape = TransistorShape.from_name(shape)
        scaled = self.reference.parameters.scaled_by_area(self.area_factor(shape))
        return scaled.replace(name=model_name_for_shape(shape) + "_AF")

    def model_card(self, shape: TransistorShape | str) -> str:
        return self.generate(shape).to_model_card()

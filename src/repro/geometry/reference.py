"""Reference transistor: the measured anchor device of the generator flow.

The paper's generator consumes "reference transistor model parameters
which are based on actual measurements".  Without a fab, this module
provides the equivalent: a reference device whose parameter set is the
nominal process prediction perturbed by a deterministic "silicon spread"
(real devices never land exactly on the process file).  The
:mod:`repro.measurement` package can regenerate these parameters from
synthetic measured curves, closing the measure-extract-generate loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.parameters import GummelPoonParameters
from .design_rules import MaskDesignRules
from .process import ProcessData
from .shape import TransistorShape


@dataclass(frozen=True)
class ReferenceTransistor:
    """A measured device: its drawn shape and extracted model parameters."""

    shape: TransistorShape
    parameters: GummelPoonParameters


#: Deterministic multiplicative "silicon spread" applied to the nominal
#: process prediction to produce the reference device's measured values.
#: Chosen once, within typical bipolar run-to-run variation.
SILICON_SPREAD: dict[str, float] = {
    "IS": 1.08,
    "BF": 0.93,
    "ISE": 1.20,
    "IKF": 0.95,
    "ITF": 0.95,
    "CJE": 1.05,
    "CJC": 1.04,
    "CJS": 1.06,
    "RB": 1.10,
    "RBM": 1.07,
    "RE": 1.12,
    "RC": 1.09,
    "TF": 1.03,
    "TR": 1.00,
    "VAF": 0.97,
    "VAR": 1.00,
    "BR": 0.90,
    "ISC": 1.15,
}

#: The shape of the standard reference device (measured on every lot).
REFERENCE_SHAPE_NAME = "N1.2-6D"


def default_reference(
    process: ProcessData | None = None,
    rules: MaskDesignRules | None = None,
) -> ReferenceTransistor:
    """The standard reference device with its "measured" parameters.

    Built as: nominal prediction for the reference shape (from the
    process file and design rules) times the silicon spread.
    """
    from .generator import ModelParameterGenerator  # cycle: generator uses us

    process = process or ProcessData()
    rules = rules or MaskDesignRules()
    shape = TransistorShape.from_name(REFERENCE_SHAPE_NAME)
    nominal = ModelParameterGenerator(process, rules).generate(shape)
    changes: dict[str, float] = {}
    for key, factor in SILICON_SPREAD.items():
        value = getattr(nominal, key)
        if value is None:  # RBM default
            value = nominal.rbm_effective
        changes[key] = value * factor
    measured = nominal.replace(name="QREF", **changes)
    return ReferenceTransistor(shape=shape, parameters=measured)

"""Electrical process data for the fictitious high-frequency bipolar process.

These are the per-unit densities the parameter generator combines with
layout geometry: junction capacitances per area and per perimeter, sheet
and contact resistances, current densities.  The absolute values describe
a plausible mid-1990s double-poly bipolar process with fT around
10-15 GHz (consistent with the paper's Fig. 9 axis); the geometry
*dependence* of the generated parameters — the paper's point — follows
from the formulas in :mod:`repro.geometry.layout`, not from these
absolute numbers.

Units: um for length, fF for capacitance densities as noted, A/um^2 and
A/um for current densities, ohm/sq for sheet resistances, ohm*um^2 for
contact resistivities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError


@dataclass(frozen=True)
class ProcessData:
    """Per-unit electrical parameters of the bipolar process."""

    name: str = "hf-bipolar-0.8um"

    # Saturation-current densities (area + sidewall components).
    js_area: float = 4.0e-18  #: A/um^2, bottom component of IS
    js_perimeter: float = 2.4e-19  #: A/um, sidewall component of IS

    # Base current densities (set ideal beta and its geometry dependence).
    jb_area: float = 4.0e-20  #: A/um^2, bulk base recombination
    jb_perimeter: float = 1.0e-20  #: A/um, surface recombination

    # Nonideal B-E leakage (perimeter dominated).
    jse_perimeter: float = 4.0e-16  #: A/um
    ne: float = 2.0

    # High-injection knees (proportional to emitter area).
    jkf: float = 4.0e-4  #: A/um^2 forward knee current density
    jtf: float = 6.0e-4  #: A/um^2 ITF density (transit-time roll-off)

    # Junction capacitance densities (F/um^2 and F/um).
    cje_area: float = 3.0e-15
    cje_perimeter: float = 0.8e-15
    vje: float = 0.9
    mje: float = 0.35
    cjc_area: float = 0.65e-15
    cjc_perimeter: float = 0.26e-15
    vjc: float = 0.65
    mjc: float = 0.33
    cjs_area: float = 0.18e-15
    cjs_perimeter: float = 0.26e-15
    vjs: float = 0.55
    mjs: float = 0.40

    # Resistances.
    rsb_intrinsic: float = 9000.0  #: ohm/sq pinched base sheet under emitter
    rsb_extrinsic: float = 450.0  #: ohm/sq extrinsic base sheet
    rb_contact: float = 40.0  #: ohm*um, contact resistance per unit stripe length
    re_contact: float = 18.0  #: ohm*um^2 emitter contact resistivity
    rc_epi: float = 600.0  #: ohm*um^2 vertical epi resistance per emitter area
    rsc_buried: float = 25.0  #: ohm/sq buried-layer sheet
    rc_sinker: float = 12.0  #: ohm*um, sinker resistance per unit length

    # Vertical-profile transit time (geometry independent to first order).
    tf: float = 1.0e-11  #: s, forward transit time
    xtf: float = 2.0  #: TF bias-dependence coefficient
    vtf: float = 2.5  #: V
    ptf: float = 25.0  #: degrees excess phase
    tr: float = 1.2e-9  #: s, reverse transit time

    # DC parameters without strong geometry dependence.
    nf: float = 1.0
    nr: float = 1.0
    vaf: float = 45.0
    var: float = 4.0
    br: float = 2.5
    jsc_perimeter: float = 1.0e-15  #: A/um, B-C leakage density
    nc: float = 2.0

    def __post_init__(self):
        positive = (
            "js_area", "js_perimeter", "jb_area", "jb_perimeter",
            "jse_perimeter", "jkf", "jtf",
            "cje_area", "cje_perimeter", "cjc_area", "cjc_perimeter",
            "cjs_area", "cjs_perimeter",
            "rsb_intrinsic", "rsb_extrinsic", "rb_contact", "re_contact",
            "rc_epi", "rsc_buried", "rc_sinker", "tf",
            "nf", "nr", "vaf", "var", "br",
        )
        for attr in positive:
            if getattr(self, attr) <= 0:
                raise GeometryError(f"process parameter {attr} must be positive")

"""The model parameter generation program (paper Fig. 10).

Flow, as in the paper:

1. read in schematic data and extract transistor shapes,
2. read in reference transistor model parameters (measured),
3. read in transistor process and mask data,
4. calculate model parameters for each new shape transistor,
5. emit SPICE model cards / run SPICE analysis.

The generator predicts each geometry-dependent parameter from layout
arithmetic (:mod:`repro.geometry.layout`) and process densities, then —
when a reference device is supplied — anchors every prediction with the
ratio measured/predicted evaluated at the reference shape.  The reference
device is therefore reproduced exactly, and other shapes scale with
physical geometry laws instead of SPICE's bare area factor.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..devices.parameters import GummelPoonParameters
from ..errors import GeometryError
from .design_rules import MaskDesignRules
from .layout import LayoutReport, layout_report
from .process import ProcessData
from .reference import ReferenceTransistor
from .shape import TransistorShape

#: Parameters anchored by the reference measurement (ratio calibration).
CALIBRATED_PARAMETERS = (
    "IS", "BF", "ISE", "IKF", "ITF", "CJE", "CJC", "CJS",
    "RB", "RBM", "RE", "RC", "TF", "TR", "VAF", "VAR", "BR", "ISC",
)


def model_name_for_shape(shape: TransistorShape) -> str:
    """A deck-safe model name for a shape (``N1.2x2-6D`` -> ``QN1P2X2_6D``)."""
    text = shape.name.replace(".", "P").replace("-", "_").upper()
    return "Q" + re.sub(r"[^A-Z0-9_]", "_", text)


@dataclass
class ModelParameterGenerator:
    """Generates Gummel-Poon parameter sets for arbitrary transistor shapes."""

    process: ProcessData = field(default_factory=ProcessData)
    rules: MaskDesignRules = field(default_factory=MaskDesignRules)
    reference: ReferenceTransistor | None = None

    def __post_init__(self):
        self._calibration: dict[str, float] = {}
        if self.reference is not None:
            self._calibrate(self.reference)

    # -- calibration -------------------------------------------------------------

    def _calibrate(self, reference: ReferenceTransistor) -> None:
        """Compute measured/predicted anchors at the reference shape."""
        predicted = self._predict(reference.shape)
        measured = reference.parameters
        for key in CALIBRATED_PARAMETERS:
            predicted_value = _param_value(predicted, key)
            measured_value = _param_value(measured, key)
            if predicted_value <= 0 or measured_value <= 0:
                continue
            self._calibration[key] = measured_value / predicted_value

    # -- prediction ---------------------------------------------------------------

    def report(self, shape: TransistorShape | str) -> LayoutReport:
        """Layout quantities for a shape (accepts shape or name)."""
        shape = _as_shape(shape)
        return layout_report(shape, self.rules, self.process)

    def _predict(self, shape: TransistorShape) -> GummelPoonParameters:
        """Nominal parameter prediction from process densities alone."""
        p = self.process
        geo = layout_report(shape, self.rules, p)
        ae, pe = geo.emitter_area, geo.emitter_perimeter
        ab, pb = geo.base_area, geo.base_perimeter
        ac, pc = geo.collector_area, geo.collector_perimeter

        i_s = p.js_area * ae + p.js_perimeter * pe
        i_b = p.jb_area * ae + p.jb_perimeter * pe
        return GummelPoonParameters(
            name=model_name_for_shape(shape),
            polarity="npn",
            IS=i_s,
            BF=i_s / i_b,
            NF=p.nf,
            VAF=p.vaf,
            IKF=p.jkf * ae,
            ISE=p.jse_perimeter * pe,
            NE=p.ne,
            BR=p.br,
            NR=p.nr,
            VAR=p.var,
            IKR=p.jkf * ab,
            ISC=p.jsc_perimeter * pb,
            NC=p.nc,
            RB=geo.rb_total,
            RBM=geo.rb_minimum,
            RE=geo.re_ohmic,
            RC=geo.rc_ohmic,
            CJE=p.cje_area * ae + p.cje_perimeter * pe,
            VJE=p.vje,
            MJE=p.mje,
            CJC=p.cjc_area * ab + p.cjc_perimeter * pb,
            VJC=p.vjc,
            MJC=p.mjc,
            XCJC=geo.xcjc,
            CJS=p.cjs_area * ac + p.cjs_perimeter * pc,
            VJS=p.vjs,
            MJS=p.mjs,
            TF=p.tf,
            XTF=p.xtf,
            VTF=p.vtf,
            ITF=p.jtf * ae,
            PTF=p.ptf,
            TR=p.tr,
        )

    def generate(self, shape: TransistorShape | str) -> GummelPoonParameters:
        """Generate the full parameter set for a shape.

        With a reference device configured, predictions are anchored so
        the reference shape reproduces its measured parameters exactly.
        """
        shape = _as_shape(shape)
        predicted = self._predict(shape)
        if not self._calibration:
            return predicted
        changes: dict[str, float] = {}
        for key, factor in self._calibration.items():
            changes[key] = _param_value(predicted, key) * factor
        # Non-geometric parameters are taken from the measurement directly.
        measured = self.reference.parameters
        for key in ("NF", "NR", "NE", "NC", "VJE", "MJE", "VJC", "MJC",
                    "VJS", "MJS", "XTF", "VTF", "PTF", "FC"):
            changes[key] = getattr(measured, key)
        return predicted.replace(**changes)

    # -- deck emission ---------------------------------------------------------------

    def model_card(self, shape: TransistorShape | str) -> str:
        """SPICE ``.MODEL`` card text for a shape."""
        return self.generate(shape).to_model_card()

    def model_library(self, shapes) -> str:
        """A deck fragment with one ``.MODEL`` card per shape."""
        cards = [self.model_card(shape) for shape in shapes]
        header = (
            f"* Geometry-generated BJT models "
            f"(process {self.process.name}, rules {self.rules.name})"
        )
        return "\n".join([header, *cards]) + "\n"

    # -- schematic annotation (Fig. 10 step 1) ------------------------------------

    def apply_shapes(self, circuit, shape_by_instance: dict[str, str]) -> None:
        """Re-model BJT instances in a circuit according to a shape map.

        ``shape_by_instance`` maps element names to shape names — the
        "extract transistor shapes from the schematic" step of Fig. 10.
        Instances are rebuilt in place with their generated models.
        """
        from ..spice.elements import BJT  # local import to avoid a cycle

        for instance_name, shape_name in shape_by_instance.items():
            element = circuit.element(instance_name)
            if not isinstance(element, BJT):
                raise GeometryError(
                    f"{instance_name!r} is not a BJT (got "
                    f"{type(element).__name__})"
                )
            model = self.generate(shape_name)
            circuit.remove(instance_name)
            circuit.add(BJT(element.name, element.nodes, model, area=1.0))


def _as_shape(shape: TransistorShape | str) -> TransistorShape:
    if isinstance(shape, TransistorShape):
        return shape
    return TransistorShape.from_name(shape)


def _param_value(params: GummelPoonParameters, key: str) -> float:
    if key == "RBM":
        return params.rbm_effective
    return getattr(params, key)

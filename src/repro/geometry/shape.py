"""Transistor shape descriptions and the paper's shape-name codec.

The paper (Fig. 8) selects bipolar transistor shapes by emitter length,
emitter width, number of emitter strips and number of base stripes, and
names them like::

    N1.2-6S      single emitter 1.2um x 6um, single base stripe
    N1.2-6D      same emitter, double base stripes
    N2.4-6D      emitter 2.4um x 6um, double base
    N1.2x2-6S    two emitter strips, single base, same total emitter
                 area as N1.2-6S (each strip 1.2um x 3um)
    N1.2-12D     emitter 1.2um x 12um, double base
    N1.2x2-6T    two emitter strips, triple base stripes

Grammar: ``N<width>[x<strips>]-<total_length><S|D|T|Q>``.  The length is
the *total* emitter length; with multiple strips each strip carries
``total_length / strips``, so "x2" variants keep the emitter area of
their single-strip sibling, matching the paper's Fig. 8 captions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import GeometryError

_BASE_CODES = {"S": 1, "D": 2, "T": 3, "Q": 4}
_BASE_LETTERS = {count: letter for letter, count in _BASE_CODES.items()}

_NAME_RE = re.compile(
    r"""^N
        (?P<width>\d+(?:\.\d+)?)
        (?:[xX](?P<strips>\d+))?
        -
        (?P<length>\d+(?:\.\d+)?)
        (?P<base>[SDTQ])
        $""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class TransistorShape:
    """Geometric description of a bipolar transistor.

    Dimensions are in micrometres.  ``emitter_length`` is the length of
    *one* strip; :attr:`total_emitter_length` multiplies by the strip
    count.
    """

    emitter_width: float  #: emitter strip width (um)
    emitter_length: float  #: single emitter strip length (um)
    emitter_strips: int = 1  #: number of parallel emitter strips
    base_stripes: int = 1  #: number of base contact stripes

    def __post_init__(self):
        if self.emitter_width <= 0 or self.emitter_length <= 0:
            raise GeometryError(
                f"emitter dimensions must be positive, got "
                f"{self.emitter_width} x {self.emitter_length}"
            )
        if self.emitter_strips < 1:
            raise GeometryError("emitter_strips must be >= 1")
        if self.base_stripes < 1:
            raise GeometryError("base_stripes must be >= 1")
        if self.base_stripes > self.emitter_strips + 1:
            raise GeometryError(
                f"{self.base_stripes} base stripes cannot interleave "
                f"{self.emitter_strips} emitter strip(s) "
                "(at most strips+1 fit)"
            )

    # -- derived emitter geometry ---------------------------------------------

    @property
    def total_emitter_length(self) -> float:
        """Sum of strip lengths (um)."""
        return self.emitter_length * self.emitter_strips

    @property
    def emitter_area(self) -> float:
        """Total emitter junction area (um^2)."""
        return self.emitter_width * self.total_emitter_length

    @property
    def emitter_perimeter(self) -> float:
        """Total emitter junction perimeter over all strips (um)."""
        return 2.0 * self.emitter_strips * (self.emitter_width + self.emitter_length)

    @property
    def perimeter_to_area(self) -> float:
        """P/A ratio (1/um) — the quantity area-factor scaling ignores."""
        return self.emitter_perimeter / self.emitter_area

    def double_base_sides(self) -> int:
        """Number of emitter-strip flanks adjacent to a base stripe.

        Emitter strips and base-contact stripes interleave in a row, so
        the number of emitter-flank/contact interfaces is
        ``strips + stripes - 1`` (each adjacent pair shares one), capped
        at two flanks per strip.  A lone stripe beside a lone strip
        serves one flank (one-sided base); two stripes sandwiching one
        strip serve both flanks.  This count controls the intrinsic
        base resistance (W/3L one-sided vs W/12L two-sided per strip).
        """
        return min(self.emitter_strips + self.base_stripes - 1,
                   2 * self.emitter_strips)

    # -- codec -----------------------------------------------------------------

    @property
    def name(self) -> str:
        """Canonical paper-style shape name (e.g. ``N1.2x2-6D``)."""
        width = _format_dim(self.emitter_width)
        length = _format_dim(self.total_emitter_length)
        strips = f"x{self.emitter_strips}" if self.emitter_strips > 1 else ""
        letter = _BASE_LETTERS.get(self.base_stripes)
        if letter is None:
            raise GeometryError(
                f"no name letter for {self.base_stripes} base stripes"
            )
        return f"N{width}{strips}-{length}{letter}"

    @classmethod
    def from_name(cls, name: str) -> "TransistorShape":
        """Parse a paper-style shape name.

        >>> TransistorShape.from_name("N1.2-12D")
        TransistorShape(emitter_width=1.2, emitter_length=12.0, emitter_strips=1, base_stripes=2)
        """
        match = _NAME_RE.match(name.strip())
        if not match:
            raise GeometryError(f"cannot parse shape name {name!r}")
        strips = int(match.group("strips") or 1)
        total_length = float(match.group("length"))
        return cls(
            emitter_width=float(match.group("width")),
            emitter_length=total_length / strips,
            emitter_strips=strips,
            base_stripes=_BASE_CODES[match.group("base")],
        )

    def scaled_length(self, factor: float) -> "TransistorShape":
        """A copy with the strip length scaled by ``factor``."""
        if factor <= 0:
            raise GeometryError("scale factor must be positive")
        return TransistorShape(
            emitter_width=self.emitter_width,
            emitter_length=self.emitter_length * factor,
            emitter_strips=self.emitter_strips,
            base_stripes=self.base_stripes,
        )


def _format_dim(value: float) -> str:
    """Format a dimension the way the paper does (1.2, 6, 12...)."""
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


#: The shapes of the paper's Fig. 8 (a)-(f), keyed by caption letter.
FIG8_SHAPES: dict[str, str] = {
    "a": "N1.2-6S",
    "b": "N1.2-6D",
    "c": "N2.4-6D",
    "d": "N1.2x2-6S",
    "e": "N1.2-12D",
    "f": "N1.2x2-6T",
}

#: The shapes swept in the paper's Fig. 9 (fT vs Ic).
FIG9_SHAPES: tuple[str, ...] = ("N1.2-6D", "N1.2-12D", "N1.2-24D", "N1.2-48D")

#: The shapes of Table 1 (ring-oscillator frequency sweep) — the Fig. 8
#: taxonomy applied uniformly to the differential-pair transistors.
TABLE1_SHAPES: tuple[str, ...] = (
    "N1.2-6S",
    "N1.2-6D",
    "N2.4-6D",
    "N1.2x2-6S",
    "N1.2-12D",
    "N1.2x2-6T",
)

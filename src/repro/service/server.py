"""The simulation service: compile-once circuits, async analysis jobs.

:class:`SimulationService` is the long-running layer the ROADMAP's
north star calls for on top of the compiled engine:

* :meth:`create_circuit` parses, lints and **compiles a deck once**,
  caching the circuit under a content-hashed id — resubmitting the same
  netlist returns the existing id without touching the parser, and every
  later job reuses the compiled engine (recompiles are counted and stay
  at zero).
* :meth:`submit` enqueues ``dc``/``ac``/``transient``/``sweep``/
  ``optimize``/``verify`` jobs on a bounded priority queue served by worker
  threads; at capacity a submit is **rejected** with a structured
  503-style payload instead of queueing unboundedly (backpressure).
* :meth:`poll` / :meth:`wait` read the result store; queued jobs can be
  withdrawn via :meth:`cancel_job`.
* Failures carry the engine's structured forensics
  (:class:`~repro.errors.ConvergenceReport`,
  :class:`~repro.spice.lint.LintIssue`, per-point sweep failures) as
  JSON — see :mod:`repro.service.payloads`.
* Each tenant gets its own :class:`~repro.sweep.ResultCache`, keyed by
  the same content hashes the sweep layer computes, so one tenant's
  repeated identical requests are served from cache without leaking
  results across tenants.

Concurrency model: analyses sharing one compiled circuit are serialized
per circuit id (the compiled engine's evaluation buffers are shared
state); jobs on *different* circuits run concurrently across worker
threads, and sweep jobs may additionally fan out through the sweep
layer's executors (whose pool registry is concurrency-safe — see
:mod:`repro.sweep.executors`).

``workers=0`` puts the service in synchronous mode: nothing executes
until :meth:`step` is called, which pops and runs exactly one job
inline.  Tests use this for deterministic queue-order, cancellation and
backpressure scenarios.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field

from ..errors import AnalysisError, ReproError
from ..spice.lint import lint_circuit
from ..spice.parser import parse_deck
from ..spice.runner import _deck_tolerances
from ..sweep import ResultCache, content_key, run_sweep
from ..sweep.batched import (
    BlockedACSweep,
    BlockedDCSweep,
    ac_gain_db,
    node_voltage,
)
from .jobs import JOB_KINDS, Job, JobQueue, QueueFullError
from .payloads import error_payload, failed_point_to_dict, ok_payload
from .stats import ServiceStats

__all__ = ["SimulationService", "circuit_id_for"]


def circuit_id_for(deck_text: str) -> str:
    """The content-hashed id a deck will be cached under."""
    return hashlib.sha256(deck_text.encode()).hexdigest()[:16]


@dataclass
class _CircuitEntry:
    """One cached circuit: deck text, compiled simulator, bookkeeping."""

    circuit_id: str
    deck_text: str
    deck: object
    simulator: object
    #: serializes dc/ac/transient jobs on the shared compiled engine.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: lazily-built, reusable sweep evaluators keyed by
    #: ``(analysis, output, frequency grid)`` — DC node outputs and AC
    #: gain sweeps each hold their own compiled evaluator.
    evaluators: dict = field(default_factory=dict)
    created_at: float = field(default_factory=time.monotonic)


class _TargetObjective:
    """Picklable optimize objective: squared error of a node voltage.

    Wraps a :class:`~repro.sweep.BlockedDCSweep` evaluator, so the
    expensive parse + compile happens once per process and ships as deck
    text; the content-hash cache tag composes the evaluator's own tag
    with the target, keeping distinct targets in distinct cache rows.

    Batch-capable when the wrapped evaluator is: the optimizer's
    candidate batches then ride the evaluator's blocked fast path (one
    stacked solve per probe batch) and only the scalar squared-error
    reduction runs per candidate.
    """

    def __init__(self, evaluator: BlockedDCSweep, target: float):
        self._evaluator = evaluator
        self._target = float(target)
        self.supports_batch = bool(
            getattr(evaluator, "supports_batch", False)
        ) and callable(getattr(evaluator, "evaluate_batch", None))

    def __call__(self, params: dict, attempt: int = 0) -> float:
        value = self._evaluator(params, attempt=attempt)
        return (float(value) - self._target) ** 2

    def evaluate_batch(self, chunk_params: list) -> list:
        return [
            (None, error) if error is not None
            else ((float(value) - self._target) ** 2, None)
            for value, error in self._evaluator.evaluate_batch(chunk_params)
        ]

    @property
    def __cache_tag__(self) -> str:
        return (f"repro.service._TargetObjective"
                f"({self._evaluator.__cache_tag__},{self._target!r})")


class SimulationService:
    """In-process simulation-as-a-service engine (see module docstring).

    The HTTP front end (:mod:`repro.service.http`) is a thin JSON shim
    over this class; tests and benchmarks may drive it directly.
    """

    def __init__(
        self,
        workers: int = 2,
        queue_limit: int | None = 64,
        cache_maxsize: int | None = None,
        max_jobs_kept: int = 4096,
        sweep_executor=None,
        sweep_jobs=None,
    ):
        if workers < 0:
            raise AnalysisError("service worker count must be >= 0")
        self._queue = JobQueue(limit=queue_limit)
        self._circuits: dict[str, _CircuitEntry] = {}
        self._circuits_lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._jobs_order: list[str] = []
        self._jobs_lock = threading.Lock()
        self._tenants: dict[str, ResultCache] = {}
        self._tenants_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._cache_maxsize = cache_maxsize
        self._max_jobs_kept = max_jobs_kept
        self._sweep_executor = sweep_executor
        self._sweep_jobs = sweep_jobs
        self.stats = ServiceStats()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the workers; queued jobs are cancelled, running finish."""
        if self._closed:
            return
        self._closed = True
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if self._queue.cancel(job):
                self.stats.record_cancel()
        self._queue.close()
        for thread in self._workers:
            thread.join(timeout=10.0)

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- circuits ------------------------------------------------------------

    def create_circuit(self, deck_text: str, tenant: str = "default") -> dict:
        """Parse, lint and compile a deck; return its content-hashed id.

        Identical deck text maps to the identical id — the second create
        is a registry hit that performs no parsing and no compilation
        (``reused: true`` in the payload).
        """
        self.stats.record_request("create_circuit")
        if not isinstance(deck_text, str) or not deck_text.strip():
            return error_payload(
                AnalysisError("deck text must be a non-empty string"),
                code=400,
            )
        circuit_id = circuit_id_for(deck_text)
        with self._circuits_lock:
            entry = self._circuits.get(circuit_id)
        if entry is not None:
            self.stats.record_circuit(reused=True)
            return ok_payload(circuit_id=circuit_id, reused=True,
                              title=entry.deck.title)
        try:
            deck = parse_deck(deck_text)
            lint_circuit(deck.circuit)
            from ..spice.analysis import Simulator

            tolerances, gmin = _deck_tolerances(deck)
            engine = (getattr(deck, "options", None) or {}).get("solver")
            simulator = Simulator(deck.circuit, tolerances=tolerances,
                                  gmin=gmin, engine=engine)
            # Compile now: the create call pays the one-time cost, every
            # job after it reuses the cached engine.
            simulator._engine()
        except ReproError as exc:
            return error_payload(exc)
        entry = _CircuitEntry(
            circuit_id=circuit_id, deck_text=deck_text, deck=deck,
            simulator=simulator,
        )
        with self._circuits_lock:
            # Two concurrent creates of one deck race benignly: first
            # registration wins, the loser's compile is discarded.
            existing = self._circuits.setdefault(circuit_id, entry)
            reused = existing is not entry
        self.stats.record_circuit(reused=reused)
        return ok_payload(circuit_id=circuit_id, reused=reused,
                          title=deck.title)

    def _entry(self, circuit_id: str) -> _CircuitEntry:
        with self._circuits_lock:
            entry = self._circuits.get(circuit_id)
        if entry is None:
            raise AnalysisError(f"circuit {circuit_id!r} not found")
        return entry

    def _tenant_cache(self, tenant: str) -> ResultCache:
        with self._tenants_lock:
            cache = self._tenants.get(tenant)
            if cache is None:
                cache = self._tenants[tenant] = ResultCache(
                    maxsize=self._cache_maxsize
                )
            return cache

    # -- job submission ------------------------------------------------------

    def submit(self, kind: str, circuit_id: str, params: dict | None = None,
               priority: int = 0, tenant: str = "default") -> dict:
        """Enqueue one analysis job; returns its id or a 503 rejection."""
        self.stats.record_request(f"run_{kind}" if kind in JOB_KINDS
                                  else "submit")
        if kind not in JOB_KINDS:
            return error_payload(
                AnalysisError(
                    f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
                ),
                code=400,
            )
        try:
            self._entry(circuit_id)
        except AnalysisError as exc:
            return error_payload(exc, code=404)
        job = Job(
            id=f"job-{next(self._ids):08d}",
            kind=kind,
            circuit_id=circuit_id,
            tenant=tenant,
            params=dict(params or {}),
            priority=int(priority),
        )
        with self._jobs_lock:
            self._jobs[job.id] = job
            self._jobs_order.append(job.id)
            while len(self._jobs_order) > self._max_jobs_kept:
                oldest_id = self._jobs_order[0]
                oldest = self._jobs.get(oldest_id)
                if oldest is not None and not oldest.finished:
                    break  # never evict live jobs
                self._jobs_order.pop(0)
                self._jobs.pop(oldest_id, None)
        try:
            self._queue.submit(job)
        except QueueFullError as exc:
            with self._jobs_lock:
                self._jobs.pop(job.id, None)
                if job.id in self._jobs_order:
                    self._jobs_order.remove(job.id)
            self.stats.record_rejection()
            payload = error_payload(exc, code=503)
            payload["status"] = "rejected"
            payload["queue_depth"] = exc.depth
            payload["queue_limit"] = exc.limit
            return payload
        self.stats.record_submit()
        return ok_payload(job_id=job.id, state="queued")

    # convenience wrappers matching the API exemplar's verbs ----------------

    def run_dc(self, circuit_id: str, priority: int = 0,
               tenant: str = "default", **params) -> dict:
        return self.submit("dc", circuit_id, params, priority, tenant)

    def run_ac(self, circuit_id: str, priority: int = 0,
               tenant: str = "default", **params) -> dict:
        return self.submit("ac", circuit_id, params, priority, tenant)

    def run_transient(self, circuit_id: str, priority: int = 0,
                      tenant: str = "default", **params) -> dict:
        return self.submit("transient", circuit_id, params, priority, tenant)

    def run_sweep(self, circuit_id: str, priority: int = 0,
                  tenant: str = "default", **params) -> dict:
        return self.submit("sweep", circuit_id, params, priority, tenant)

    def run_optimize(self, circuit_id: str, priority: int = 0,
                     tenant: str = "default", **params) -> dict:
        return self.submit("optimize", circuit_id, params, priority, tenant)

    def run_verify(self, circuit_id: str, priority: int = 0,
                   tenant: str = "default", **params) -> dict:
        return self.submit("verify", circuit_id, params, priority, tenant)

    # -- job store -----------------------------------------------------------

    def _job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def poll(self, job_id: str) -> dict:
        """The job's current state (result/error attached once finished)."""
        self.stats.record_request("poll")
        job = self._job(job_id)
        if job is None:
            return error_payload(
                AnalysisError(f"job {job_id!r} not found"), code=404
            )
        return ok_payload(**job.describe())

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job finishes (or ``timeout``), then poll it."""
        job = self._job(job_id)
        if job is None:
            return error_payload(
                AnalysisError(f"job {job_id!r} not found"), code=404
            )
        job.done_event.wait(timeout)
        return self.poll(job_id)

    def cancel_job(self, job_id: str) -> dict:
        """Withdraw a queued job; running/finished jobs are left alone."""
        self.stats.record_request("cancel")
        job = self._job(job_id)
        if job is None:
            return error_payload(
                AnalysisError(f"job {job_id!r} not found"), code=404
            )
        if self._queue.cancel(job):
            self.stats.record_cancel()
            return ok_payload(job_id=job_id, state="cancelled")
        return ok_payload(job_id=job_id, state=job.status, cancelled=False)

    def stats_payload(self) -> dict:
        """The service's observability snapshot (``GET /stats``)."""
        self.stats.record_request("stats")
        with self._tenants_lock:
            caches = list(self._tenants.values())
        hits = sum(cache.hits for cache in caches)
        misses = sum(cache.misses for cache in caches)
        return ok_payload(stats=self.stats.as_dict(
            queue_depth=len(self._queue),
            cache_hits=hits, cache_misses=misses,
        ))

    def profile_summary(self) -> str:
        """Human-readable stats digest (``repro serve --profile``)."""
        with self._tenants_lock:
            caches = list(self._tenants.values())
        return self.stats.summary(
            queue_depth=len(self._queue),
            cache_hits=sum(cache.hits for cache in caches),
            cache_misses=sum(cache.misses for cache in caches),
        )

    # -- execution -----------------------------------------------------------

    def step(self, timeout: float | None = 0.0) -> bool:
        """Pop and execute one queued job inline (synchronous mode).

        Returns True when a job ran.  Valid at any worker count, but the
        intended use is ``workers=0`` tests that need deterministic
        execution order.
        """
        job = self._queue.next_job(timeout=timeout)
        if job is None:
            return False
        self._execute(job)
        return True

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.next_job(timeout=None)
            if job is None:
                return
            self._execute(job)

    def _execute(self, job: Job) -> None:
        try:
            handler = getattr(self, f"_job_{job.kind}")
            job.result = handler(job)
            job.status = "done"
        except Exception as exc:  # noqa: BLE001 - jobs must never kill workers
            job.error = error_payload(exc)
            job.status = "failed"
        job.finished_at = time.monotonic()
        self.stats.record_finish(job.status == "done",
                                 job.latency_seconds())
        job.done_event.set()

    def _cached(self, job: Job, payload_key: str, compute):
        """Serve one job from the tenant cache, or compute + store.

        ``payload_key`` is a :func:`~repro.sweep.content_key` over the
        job's kind, circuit id and parameters — the same content-hash
        scheme the sweep layer uses, so identical requests from one
        tenant are cache hits and tenants never share rows.
        """
        cache = self._tenant_cache(job.tenant)
        hit = cache.get(payload_key, default=_MISS)
        if hit is not _MISS:
            payload = dict(hit)
            payload["cached"] = True
            return payload
        payload = compute()
        cache.put(payload_key, payload)
        return dict(payload)

    def _recompile_guard(self, entry: _CircuitEntry):
        """Snapshot the entry's engine compile counter; returns a
        callable that folds any post-snapshot compiles into the stats
        (they indicate the compile-once contract broke)."""
        engine = entry.simulator._engine()
        before = engine.stats.compilations

        def finish() -> None:
            delta = engine.stats.compilations - before
            self.stats.record_recompiles(delta)

        return finish

    # -- job kinds -----------------------------------------------------------

    def _job_dc(self, job: Job) -> dict:
        entry = self._entry(job.circuit_id)
        key = content_key(f"service.dc.{job.circuit_id}", job.params)

        def compute() -> dict:
            with entry.lock:
                guard = self._recompile_guard(entry)
                op = entry.simulator.operating_point()
                guard()
            nodes = {f"v({node.lower()})": float(value)
                     for node, value in op.node_voltages().items()}
            return {"nodes": nodes}

        return self._cached(job, key, compute)

    def _job_ac(self, job: Job) -> dict:
        entry = self._entry(job.circuit_id)
        params = job.params
        start = float(params.get("start", 1.0))
        stop = float(params.get("stop", 1e9))
        points = int(params.get("points_per_decade", 10))
        sweep = str(params.get("sweep", "dec"))
        output = params.get("output")
        key = content_key(f"service.ac.{job.circuit_id}", {
            "start": start, "stop": stop, "points": points,
            "sweep": sweep, "output": output,
        })

        def compute() -> dict:
            with entry.lock:
                guard = self._recompile_guard(entry)
                ac = entry.simulator.ac(start, stop,
                                        points_per_decade=points,
                                        sweep=sweep)
                guard()
            payload = {
                "frequencies_hz": [float(f) for f in ac.frequencies],
            }
            if output is not None:
                payload["magnitude_db"] = [
                    float(v) for v in ac.voltage_db(output)
                ]
                payload["phase_deg"] = [
                    float(v) for v in ac.voltage_phase_deg(output)
                ]
            return payload

        return self._cached(job, key, compute)

    def _job_transient(self, job: Job) -> dict:
        entry = self._entry(job.circuit_id)
        params = job.params
        if "stop_time" not in params:
            raise AnalysisError("transient job needs stop_time")
        stop_time = float(params["stop_time"])
        max_step = params.get("max_step")
        output = params.get("output")
        key = content_key(f"service.transient.{job.circuit_id}", {
            "stop_time": stop_time, "max_step": max_step, "output": output,
        })

        def compute() -> dict:
            kwargs = {"stop_time": stop_time}
            if max_step is not None:
                kwargs["max_step"] = float(max_step)
            with entry.lock:
                guard = self._recompile_guard(entry)
                tran = entry.simulator.transient(**kwargs)
                guard()
            payload = {
                "times_s": [float(t) for t in tran.times],
                "points": len(tran.times),
            }
            if output is not None:
                payload["voltages"] = [
                    float(v) for v in tran.voltage(output)
                ]
            return payload

        return self._cached(job, key, compute)

    def _evaluator(self, entry: _CircuitEntry, output: str,
                   analysis: str = "dc", frequencies=None):
        """The entry's cached sweep evaluator for one measured output.

        Keyed by ``(analysis, output, frequency grid)``: DC sweeps get a
        :class:`BlockedDCSweep` over the node voltage, AC sweeps a
        :class:`BlockedACSweep` over the node's gain in dB.  Reused
        across jobs so the lazily-compiled circuit persists — repeated
        sweeps on one circuit id pay the parse + compile once, and
        ``recompiles`` stays 0 for DC and AC jobs alike.  The evaluator
        serializes its own solves, so concurrent jobs may share it
        safely.
        """
        grid = None if frequencies is None else tuple(
            float(f) for f in frequencies
        )
        key = (analysis, output, grid)
        with entry.lock:
            evaluator = entry.evaluators.get(key)
            if evaluator is None:
                if analysis == "ac":
                    evaluator = BlockedACSweep(
                        entry.deck_text, measure=ac_gain_db(output),
                        frequencies=grid,
                    )
                else:
                    evaluator = BlockedDCSweep(
                        entry.deck_text, measure=node_voltage(output)
                    )
                # Prime the lazy compile outside any timing-sensitive
                # path so later recompile accounting sees a warm engine.
                evaluator._ensure()
                entry.evaluators[key] = evaluator
            return evaluator

    def _job_sweep(self, job: Job) -> dict:
        entry = self._entry(job.circuit_id)
        params = job.params
        source = params.get("source")
        values = params.get("values")
        output = params.get("output")
        if not source or values is None or output is None:
            raise AnalysisError(
                "sweep job needs source, values and output, e.g. "
                '{"source": "VIN", "values": [0.0, 0.1], "output": "out"}'
            )
        analysis = str(params.get("analysis", "dc")).lower()
        if analysis not in ("dc", "ac"):
            raise AnalysisError(
                f"sweep job analysis must be 'dc' or 'ac', got {analysis!r}"
            )
        frequencies = None
        if analysis == "ac":
            frequencies = params.get("frequencies")
            if frequencies is None and "start" in params:
                from ..spice.ac import frequency_grid

                frequencies = frequency_grid(
                    float(params["start"]), float(params["stop"]),
                    int(params.get("points_per_decade", 10)),
                    str(params.get("sweep", "dec")),
                )
        evaluator = self._evaluator(entry, str(output), analysis=analysis,
                                    frequencies=frequencies)
        engine = evaluator._engine
        before = engine.stats.compilations
        result = run_sweep(
            evaluator,
            [{str(source): float(v)} for v in values],
            executor=params.get("executor", self._sweep_executor),
            jobs=params.get("jobs", self._sweep_jobs),
            chunk_size=params.get("chunk_size"),
            cache=self._tenant_cache(job.tenant),
            on_error=params.get("on_error", "skip"),
        )
        self.stats.record_recompiles(engine.stats.compilations - before)
        self.stats.fold_sweep(result.stats)
        if analysis == "ac":
            point_values = [
                None if v is None else [float(m) for m in v]
                for v in result.values
            ]
        else:
            point_values = [None if v is None else float(v)
                            for v in result.values]
        payload = {
            "source": str(source),
            "output": str(output),
            "analysis": analysis,
            "values": point_values,
            "failures": [failed_point_to_dict(f) for f in result.failures],
            "sweep_stats": {
                "points": result.stats.points,
                "evaluated": result.stats.evaluated,
                "cache_hits": result.stats.cache_hits,
                "executor": result.stats.executor,
                "workers": result.stats.workers,
            },
        }
        if analysis == "ac":
            payload["frequencies_hz"] = [
                float(f) for f in evaluator.frequencies
            ]
        return payload

    def _verify_evaluator(self, entry: _CircuitEntry, key: tuple,
                          corners, measurements, rules):
        """The entry's cached corner evaluator for one verify config.

        Mirrors :meth:`_evaluator`: built (and primed — every corner
        deck compiled) once per ``(corner config, rules)`` and reused
        across jobs, so repeated qualification of one circuit id keeps
        ``recompiles == 0``.
        """
        from ..verify import CornerEvaluator

        with entry.lock:
            evaluator = entry.evaluators.get(key)
            if evaluator is None:
                evaluator = CornerEvaluator(
                    entry.deck_text, corners, measurements, rules=rules,
                )
                evaluator.prime()
                entry.evaluators[key] = evaluator
            return evaluator

    def _job_verify(self, job: Job) -> dict:
        from ..verify import (
            DEFAULT_STRESS_RULES,
            default_corners,
            default_measurements,
            load_stress_rules,
            qualify_deck,
        )

        entry = self._entry(job.circuit_id)
        params = job.params
        temps = tuple(float(t)
                      for t in params.get("temps", (-20.0, 27.0, 85.0)))
        supply_tol = float(params.get("supply_tol", 0.1))
        passive_tol = float(params.get("passive_tol", 0.1))
        rules = (load_stress_rules(params["rules"])
                 if params.get("rules") else DEFAULT_STRESS_RULES)
        corners = default_corners(
            entry.deck_text, temperatures_c=temps,
            supply_tol=supply_tol, passive_tol=passive_tol,
        )
        measurements = default_measurements(entry.deck_text)
        # The executor/jobs knobs are absent from the cache key on
        # purpose: corner results are bit-identical across executors,
        # so one tenant's serial and parallel runs share rows.
        key = content_key(f"service.verify.{job.circuit_id}", {
            "temps": list(temps),
            "supply_tol": supply_tol,
            "passive_tol": passive_tol,
            "rules": [rule.to_dict() for rule in rules],
        })
        evaluator = self._verify_evaluator(
            entry,
            ("verify", temps, supply_tol, passive_tol, rules),
            corners, measurements, rules,
        )

        def compute() -> dict:
            before = evaluator.compilations()
            stats_sink: dict = {}
            report = qualify_deck(
                entry.deck_text, corners, measurements,
                name=entry.deck.title, rules=rules,
                executor=params.get("executor", self._sweep_executor),
                jobs=params.get("jobs", self._sweep_jobs),
                chunk_size=params.get("chunk_size"),
                cache=self._tenant_cache(job.tenant),
                on_error=params.get("on_error", "retry"),
                evaluator=evaluator,
                stats_sink=stats_sink,
            )
            self.stats.record_recompiles(
                evaluator.compilations() - before)
            self.stats.fold_sweep(stats_sink["sweep"])
            return report.to_dict()

        return self._cached(job, key, compute)

    def _job_optimize(self, job: Job) -> dict:
        from ..optimize.optimizers import Parameter, coordinate_search

        entry = self._entry(job.circuit_id)
        params = job.params
        output = params.get("output")
        target = params.get("target")
        dimensions = params.get("parameters")
        if output is None or target is None or not dimensions:
            raise AnalysisError(
                "optimize job needs output, target and parameters, e.g. "
                '{"output": "out", "target": 2.5, "parameters": '
                '[{"name": "VIN", "lower": 0.0, "upper": 5.0}]}'
            )
        search = [
            Parameter(
                name=str(d["name"]),
                lower=float(d["lower"]),
                upper=float(d["upper"]),
                initial=(None if d.get("initial") is None
                         else float(d["initial"])),
                log=bool(d.get("log", False)),
            )
            for d in dimensions
        ]
        objective = _TargetObjective(
            self._evaluator(entry, str(output)), float(target)
        )
        result = coordinate_search(
            objective,
            search,
            max_iterations=int(params.get("max_iterations", 40)),
            executor=params.get("executor", self._sweep_executor),
            jobs=params.get("jobs", self._sweep_jobs),
            cache=self._tenant_cache(job.tenant),
        )
        return {
            "output": str(output),
            "target": float(target),
            "best_params": {k: float(v)
                            for k, v in result.best_params.items()},
            "best_error": float(result.best_value),
            "evaluations": result.evaluations,
            "cache_hits": result.cache_hits,
            "iterations": result.iterations,
            "converged": bool(result.converged),
        }


class _Miss:
    __slots__ = ()


_MISS = _Miss()

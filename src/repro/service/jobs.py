"""Async job machinery: priority queue, bounded backpressure, cancellation.

A :class:`Job` is one requested analysis (``dc``/``ac``/``transient``/
``sweep``/``optimize``) against a cached circuit.  Jobs move through

    ``queued`` → ``running`` → ``done`` | ``failed``

with two exits on the side: ``cancelled`` (a queued job withdrawn before
a worker picked it up) and ``rejected`` (the queue was full at submit
time — the job never entered the queue at all; the submitter gets a
structured 503-style payload and must back off).

:class:`JobQueue` is a heap ordered by ``(-priority, sequence)``: higher
priority first, FIFO within a priority level.  ``limit`` bounds the
number of queued-but-not-started jobs — the service's backpressure
valve.  Cancellation is lazy: a cancelled job stays in the heap but is
skipped (and dropped) when it surfaces, which keeps ``cancel`` O(1).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = ["Job", "JobQueue", "QueueFullError", "JOB_KINDS"]

#: Analysis kinds the service executes.
JOB_KINDS = ("dc", "ac", "transient", "sweep", "optimize", "verify")


class QueueFullError(Exception):
    """The job queue is at capacity; the submit was rejected.

    Carries ``depth``/``limit`` so the service can build the structured
    503 payload without re-reading queue state (which may have changed).
    """

    def __init__(self, depth: int, limit: int):
        super().__init__(
            f"job queue full ({depth}/{limit} queued); retry later"
        )
        self.depth = depth
        self.limit = limit


@dataclass
class Job:
    """One queued analysis request plus its lifecycle record."""

    id: str
    kind: str  #: one of :data:`JOB_KINDS`
    circuit_id: str
    tenant: str = "default"
    params: dict = field(default_factory=dict)
    priority: int = 0  #: higher runs earlier
    status: str = "queued"  #: queued/running/done/failed/cancelled
    result: dict | None = None  #: payload once done
    error: dict | None = None  #: structured error payload once failed
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: set once the job reaches a terminal state (done/failed/cancelled).
    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False, compare=False)

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def latency_seconds(self) -> float | None:
        """Submit-to-finish wall time, once finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def describe(self) -> dict:
        """The job's JSON-facing snapshot (result/error included)."""
        payload = {
            "job_id": self.id,
            "kind": self.kind,
            "circuit_id": self.circuit_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.status,
        }
        latency = self.latency_seconds()
        if latency is not None:
            payload["latency_seconds"] = latency
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobQueue:
    """Bounded, thread-safe priority queue of :class:`Job` objects."""

    def __init__(self, limit: int | None = 64):
        if limit is not None and limit < 1:
            raise ValueError("queue limit must be >= 1 (or None)")
        self.limit = limit
        self._heap: list[tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for _, _, job in self._heap
                       if job.status == "queued")

    def submit(self, job: Job) -> None:
        """Enqueue ``job`` or raise :class:`QueueFullError` (backpressure).

        The depth check and the push are one atomic step: concurrent
        submitters can never conspire to exceed ``limit``.
        """
        with self._lock:
            depth = sum(1 for _, _, queued in self._heap
                        if queued.status == "queued")
            if self.limit is not None and depth >= self.limit:
                raise QueueFullError(depth, self.limit)
            heapq.heappush(
                self._heap, (-job.priority, next(self._sequence), job)
            )
            self._available.notify()

    def next_job(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority queued job, blocking up to ``timeout``.

        Cancelled jobs surfacing at the heap top are dropped silently.
        Returns ``None`` on timeout or queue close; the returned job has
        already been flipped to ``running`` under the queue lock, so two
        workers can never claim one job.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.status == "queued":
                        job.status = "running"
                        job.started_at = time.monotonic()
                        return job
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._available.wait(remaining)

    def cancel(self, job: Job) -> bool:
        """Withdraw a queued job; running/finished jobs are not touched.

        Returns True when the job was still queued and is now cancelled.
        """
        with self._lock:
            if job.status != "queued":
                return False
            job.status = "cancelled"
            job.finished_at = time.monotonic()
        job.done_event.set()
        return True

    def close(self) -> None:
        """Wake every blocked ``next_job`` with ``None`` (shutdown)."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

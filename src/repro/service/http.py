"""Stdlib HTTP front end for :class:`~repro.service.SimulationService`.

A thin JSON shim over the in-process service — no framework, just
:class:`http.server.ThreadingHTTPServer`.  Routes:

====== ======================= ==========================================
Method Path                    Action
====== ======================= ==========================================
POST   ``/circuits``           ``{"deck": ...}`` → create/reuse a circuit
POST   ``/jobs``               ``{"kind", "circuit_id", "params", ...}``
                               → submit a job (503 on backpressure)
GET    ``/jobs/<id>``          poll one job (result/error once finished)
DELETE ``/jobs/<id>``          cancel a queued job
GET    ``/stats``              service observability snapshot
GET    ``/healthz``            liveness probe
====== ======================= ==========================================

Responses are the service's structured payloads verbatim; the HTTP
status code mirrors the payload's ``code`` field (200 when absent), so
in-process and over-the-wire callers see identical data.  Tenancy rides
on the ``X-Repro-Tenant`` header (or a ``tenant`` body field).
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .server import SimulationService

__all__ = ["ServiceHTTPServer", "serve"]

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)$")


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request → one service-call → one JSON payload."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # Quiet by default; the CLI flips this on with --verbose.
    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def service(self) -> SimulationService:
        return self.server.service

    def _tenant(self, body: dict) -> str:
        header = self.headers.get("X-Repro-Tenant")
        return str(header or body.get("tenant") or "default")

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return body if isinstance(body, dict) else None

    def _send(self, payload: dict) -> None:
        status = payload.get("code", 200) if payload.get("status") in (
            "error", "rejected") else 200
        if payload.get("status") == "rejected":
            status = payload.get("code", 503)
        data = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if status == 503:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(data)

    def _bad_request(self, message: str, code: int = 400) -> None:
        self._send({"status": "error", "code": code, "error": message,
                    "error_type": "BadRequest"})

    # -- verbs ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        body = self._read_body()
        if body is None:
            self._bad_request("request body must be a JSON object")
            return
        if self.path == "/circuits":
            deck = body.get("deck")
            if not isinstance(deck, str):
                self._bad_request('body needs a "deck" string')
                return
            self._send(self.service.create_circuit(
                deck, tenant=self._tenant(body)))
        elif self.path == "/jobs":
            kind = body.get("kind")
            circuit_id = body.get("circuit_id")
            if not isinstance(kind, str) or not isinstance(circuit_id, str):
                self._bad_request('body needs "kind" and "circuit_id"')
                return
            self._send(self.service.submit(
                kind,
                circuit_id,
                params=body.get("params") or {},
                priority=int(body.get("priority", 0)),
                tenant=self._tenant(body),
            ))
        else:
            self._bad_request(f"no such endpoint: POST {self.path}", code=404)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        match = _JOB_PATH.match(self.path)
        if match:
            self._send(self.service.poll(match.group(1)))
        elif self.path == "/stats":
            self._send(self.service.stats_payload())
        elif self.path == "/healthz":
            self._send({"status": "ok"})
        else:
            self._bad_request(f"no such endpoint: GET {self.path}", code=404)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        match = _JOB_PATH.match(self.path)
        if match:
            self._send(self.service.cancel_job(match.group(1)))
        else:
            self._bad_request(
                f"no such endpoint: DELETE {self.path}", code=404)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: SimulationService, verbose: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve(host: str = "127.0.0.1", port: int = 8372,
          service: SimulationService | None = None,
          verbose: bool = False) -> ServiceHTTPServer:
    """Build a server (``port=0`` picks a free port); caller runs it."""
    service = service or SimulationService()
    return ServiceHTTPServer((host, port), service, verbose=verbose)

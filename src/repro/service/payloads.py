"""Structured JSON payloads for the simulation service.

Every service response is a plain dict of JSON-serializable primitives.
Success payloads carry ``status="ok"``; failures carry ``status="error"``
plus machine-readable forensics serialized from the exception objects the
engine already produces:

* :class:`~repro.errors.ConvergenceError` →  the solver's structured
  :class:`~repro.errors.ConvergenceReport` (homotopy stage, iterations,
  worst unknown by net name, gmin/source-scale ladder position),
* :class:`~repro.errors.ConnectivityError` → the pre-simulation lint's
  :class:`~repro.spice.lint.LintIssue` records (defect code + offending
  node names),
* :class:`~repro.sweep.FailedPoint` → per-point sweep failure records,
  reports included.

Clients therefore never parse message strings: the same diagnosis a
local ``repro run`` prints is available as fields over the wire.
"""

from __future__ import annotations

import math

from ..errors import (
    ConnectivityError,
    ConvergenceError,
    ConvergenceReport,
    ParseError,
    ReproError,
    SweepError,
)

__all__ = [
    "error_payload",
    "ok_payload",
    "report_to_dict",
    "lint_issue_to_dict",
    "failed_point_to_dict",
]


def _finite(value):
    """JSON has no NaN/Inf; encode them as None."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def report_to_dict(report: ConvergenceReport | None) -> dict | None:
    """Serialize a :class:`~repro.errors.ConvergenceReport` to JSON data."""
    if report is None:
        return None
    return {
        "stage": report.stage,
        "iterations": report.iterations,
        "residual": _finite(report.residual),
        "worst_index": report.worst_index,
        "worst_name": report.worst_name,
        "gmin": _finite(report.gmin),
        "source_scale": _finite(report.source_scale),
        "time": _finite(report.time),
        "history": [str(entry) for entry in report.history],
        "summary": report.summary(),
    }


def lint_issue_to_dict(issue) -> dict:
    """Serialize a :class:`~repro.spice.lint.LintIssue` to JSON data."""
    return {
        "code": issue.code,
        "nodes": list(issue.nodes),
        "message": issue.message,
    }


def failed_point_to_dict(failure) -> dict:
    """Serialize a sweep :class:`~repro.sweep.FailedPoint` to JSON data."""
    return {
        "index": failure.index,
        "params": {str(k): v for k, v in failure.params.items()},
        "error": failure.error,
        "error_type": failure.error_type,
        "attempts": failure.attempts,
        "report": report_to_dict(failure.report),
    }


#: HTTP-ish status code per error family (the stdlib front end reuses
#: these directly; in-process callers get them as payload fields).
_ERROR_CODES = (
    (ConvergenceError, 422),
    (ConnectivityError, 422),
    (ParseError, 400),
    (SweepError, 400),
    (ReproError, 400),
)


def error_payload(exc: BaseException, code: int | None = None) -> dict:
    """The structured ``status="error"`` payload for one exception.

    ``code`` overrides the family default (e.g. 404 for an unknown
    circuit id).  Convergence forensics and lint issues ride along when
    the exception carries them.
    """
    if code is None:
        code = 500
        for family, family_code in _ERROR_CODES:
            if isinstance(exc, family):
                code = family_code
                break
    payload = {
        "status": "error",
        "code": code,
        "error": str(exc) or repr(exc),
        "error_type": type(exc).__name__,
    }
    report = getattr(exc, "report", None)
    if isinstance(report, ConvergenceReport):
        payload["convergence_report"] = report_to_dict(report)
    issues = getattr(exc, "issues", None)
    if issues:
        payload["lint_issues"] = [lint_issue_to_dict(i) for i in issues]
    return payload


def ok_payload(**fields) -> dict:
    """A ``status="ok"`` payload with the given fields."""
    return {"status": "ok", **fields}

"""Service-level observability: request counters, latency percentiles,
cache and pool reuse.

One :class:`ServiceStats` lives on each
:class:`~repro.service.SimulationService`.  Every counter mutation holds
the stats lock — requests land from the HTTP front end's handler
threads, job completions from the worker threads, all concurrently.

The latency reservoir keeps the most recent ``latency_window`` samples
(submit-to-finish seconds per completed job); p50/p99 use the same
nearest-rank convention as
:meth:`repro.sweep.DispatchStats.chunk_percentile`, so the numbers in
``BENCH_service.json`` and ``BENCH_sweep.json`` are comparable.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe counters for one service instance."""

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self.requests: dict[str, int] = {}
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.jobs_rejected = 0
        self.circuits_created = 0
        self.circuits_reused = 0
        #: engine compilations performed *after* a circuit's create-time
        #: compile — stays 0 while compiled-circuit reuse works.
        self.recompiles = 0
        #: sweep-layer reuse observed by sweep/optimize jobs.
        self.sweep_points = 0
        self.sweep_cache_hits = 0
        self.pool_dispatches = 0
        self.pool_reuses = 0
        self.spinup_seconds = 0.0
        self._latencies: deque[float] = deque(maxlen=latency_window)

    # -- recording -----------------------------------------------------------

    def record_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def record_submit(self) -> None:
        with self._lock:
            self.jobs_submitted += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.jobs_rejected += 1

    def record_cancel(self) -> None:
        with self._lock:
            self.jobs_cancelled += 1

    def record_finish(self, ok: bool, latency_seconds: float | None) -> None:
        with self._lock:
            if ok:
                self.jobs_completed += 1
            else:
                self.jobs_failed += 1
            if latency_seconds is not None:
                self._latencies.append(latency_seconds)

    def record_circuit(self, reused: bool) -> None:
        with self._lock:
            if reused:
                self.circuits_reused += 1
            else:
                self.circuits_created += 1

    def record_recompiles(self, count: int) -> None:
        if count:
            with self._lock:
                self.recompiles += count

    def fold_sweep(self, sweep_stats) -> None:
        """Fold one job's :class:`~repro.sweep.SweepStats` into the totals.

        Pool reuse is read off the dispatch record the sweep layer
        already keeps: a process dispatch that paid no spin-up rode an
        already-warm persistent pool.
        """
        with self._lock:
            self.sweep_points += sweep_stats.points
            self.sweep_cache_hits += sweep_stats.cache_hits
            if sweep_stats.executor == "process":
                self.pool_dispatches += 1
                if sweep_stats.spinup_seconds == 0.0:
                    self.pool_reuses += 1
                self.spinup_seconds += sweep_stats.spinup_seconds

    # -- reading -------------------------------------------------------------

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of recent job latencies (seconds)."""
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
        return samples[rank]

    def as_dict(self, queue_depth: int = 0,
                cache_hits: int = 0, cache_misses: int = 0) -> dict:
        """JSON snapshot; the service passes live queue/cache gauges in."""
        with self._lock:
            lookups = cache_hits + cache_misses
            snapshot = {
                "requests": dict(self.requests),
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "completed": self.jobs_completed,
                    "failed": self.jobs_failed,
                    "cancelled": self.jobs_cancelled,
                    "rejected": self.jobs_rejected,
                },
                "queue_depth": queue_depth,
                "circuits": {
                    "created": self.circuits_created,
                    "reused": self.circuits_reused,
                    "recompiles": self.recompiles,
                },
                "cache": {
                    "hits": cache_hits,
                    "misses": cache_misses,
                    "hit_rate": (cache_hits / lookups) if lookups else 0.0,
                },
                "sweep": {
                    "points": self.sweep_points,
                    "cache_hits": self.sweep_cache_hits,
                    "pool_dispatches": self.pool_dispatches,
                    "pool_reuses": self.pool_reuses,
                    "spinup_seconds": self.spinup_seconds,
                },
            }
        snapshot["latency"] = {
            "p50_seconds": self.latency_percentile(0.5),
            "p99_seconds": self.latency_percentile(0.99),
        }
        return snapshot

    def summary(self, queue_depth: int = 0, cache_hits: int = 0,
                cache_misses: int = 0) -> str:
        """The one-paragraph digest ``repro serve --profile`` prints."""
        data = self.as_dict(queue_depth, cache_hits, cache_misses)
        jobs = data["jobs"]
        cache = data["cache"]
        latency = data["latency"]
        lines = [
            "service stats:",
            f"  requests: {sum(data['requests'].values())} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(data['requests'].items()))})",
            f"  jobs: {jobs['completed']} completed, {jobs['failed']} failed, "
            f"{jobs['cancelled']} cancelled, {jobs['rejected']} rejected "
            f"(queue depth {data['queue_depth']})",
            f"  latency: p50 {latency['p50_seconds'] * 1e3:.2f} ms, "
            f"p99 {latency['p99_seconds'] * 1e3:.2f} ms",
            f"  circuits: {data['circuits']['created']} compiled, "
            f"{data['circuits']['reused']} reused, "
            f"{data['circuits']['recompiles']} recompiles",
            f"  result cache: {cache['hits']} hits / "
            f"{cache['misses']} misses ({cache['hit_rate']:.0%})",
            f"  pools: {data['sweep']['pool_reuses']} of "
            f"{data['sweep']['pool_dispatches']} dispatches reused a warm "
            f"pool ({data['sweep']['spinup_seconds'] * 1e3:.1f} ms spin-up)",
        ]
        return "\n".join(lines)

"""Simulation-as-a-service: the long-running job-server layer.

This package turns the repo's compile-once simulation engine into a
service (``repro serve``): decks are registered once under
content-hashed circuit ids, analyses run as prioritized async jobs with
bounded backpressure, results are polled from a store, and every tenant
gets an isolated content-hash result cache.  See ``docs/service.md``.

* :class:`SimulationService` — the in-process engine
  (:mod:`repro.service.server`),
* :class:`Job` / :class:`JobQueue` — lifecycle + bounded priority queue
  (:mod:`repro.service.jobs`),
* :class:`ServiceStats` — request/latency/cache observability
  (:mod:`repro.service.stats`),
* :func:`error_payload` & friends — structured JSON forensics
  (:mod:`repro.service.payloads`),
* :func:`serve` — the stdlib HTTP front end
  (:mod:`repro.service.http`).
"""

from .jobs import JOB_KINDS, Job, JobQueue, QueueFullError
from .payloads import (
    error_payload,
    failed_point_to_dict,
    lint_issue_to_dict,
    ok_payload,
    report_to_dict,
)
from .server import SimulationService, circuit_id_for
from .stats import ServiceStats

__all__ = [
    "SimulationService",
    "circuit_id_for",
    "Job",
    "JobQueue",
    "QueueFullError",
    "JOB_KINDS",
    "ServiceStats",
    "error_payload",
    "ok_payload",
    "report_to_dict",
    "lint_issue_to_dict",
    "failed_point_to_dict",
]


def serve(*args, **kwargs):
    """Lazy re-export of :func:`repro.service.http.serve`."""
    from .http import serve as _serve

    return _serve(*args, **kwargs)

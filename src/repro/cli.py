"""Command-line front ends.

``python -m repro.cli run <deck.cir> [<deck2.cir>...] [--jobs N]``
    Parse and execute SPICE decks, printing each analysis summary;
    ``--jobs N`` runs the decks on N worker processes.  ``--on-error
    skip|retry`` keeps a non-convergent deck from aborting the batch:
    the failure (with its convergence forensics) is reported on stderr
    and the remaining decks still run, exiting 0.

``python -m repro.cli generate <shape> [<shape>...]``
    Print geometry-generated ``.MODEL`` cards for the named transistor
    shapes (the paper's Fig. 10 program as a command).

``python -m repro.cli shapes``
    Print the layout report for the paper's Fig. 8 shape taxonomy.

``python -m repro.cli optimize [--irr-target DB] [--jobs N] ...``
    Run the spec-driven top-down loop: Fig. 5 system sweep, block-spec
    derivation, cell-database re-use lookup, differential-evolution
    sizing of what cannot be re-used, and Gummel-Poon model
    regeneration for the sized geometry.

``python -m repro.cli verify <deck.cir | CELL> [--jobs N] [--json PATH]``
    Qualify a deck (or a seeded cell by name) across temperature /
    supply / passive-tolerance corners with device stress checks
    (``docs/verification.md``); prints the datasheet table and exits 1
    when qualification fails.

``python -m repro.cli serve [--port P] [--workers N] [--profile]``
    Run the simulation job server (``docs/service.md``): circuits are
    compiled once under content-hashed ids, analyses run as async jobs
    with priorities and bounded backpressure.  ``--profile`` prints the
    service stats digest on shutdown (Ctrl-C).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .errors import ReproError


def _jobs_argument(value: str):
    """``--jobs`` parser: a positive worker count, or ``auto`` to let
    the dispatch cost model pick the backend and chunking."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'auto', got {value!r}"
        ) from None


def _cmd_run(args) -> int:
    from .spice.parser import parse_deck
    from .spice.runner import run_deck, run_decks

    if len(args.decks) == 1 and not args.jobs and args.on_error == "raise":
        text = Path(args.decks[0]).read_text()
        run = run_deck(parse_deck(text), engine=args.engine)
        print(run.summary())
        if args.profile:
            print()
            print(run.profile())
        return 0

    # Several decks (or an explicit --jobs / fault-tolerance policy):
    # dispatch through the sweep engine; decks run in worker processes
    # when --jobs > 1 (--jobs auto defers to the dispatch cost model),
    # and with --on-error skip|retry a diverging deck is reported
    # instead of killing the batch.
    from .sweep import ResultCache

    stats_sink: dict = {}
    cache = ResultCache()
    summaries = run_decks(args.decks, engine=args.engine, jobs=args.jobs,
                          on_error=args.on_error, stats_sink=stats_sink,
                          cache=cache)
    failed = [s for s in summaries if not s.ok]
    for summary in summaries:
        print(summary.summary)
        if args.profile and summary.ok:
            print()
            print(summary.profile)
        print()
    if args.profile and "sweep" in stats_sink:
        print(f"dispatch: {stats_sink['sweep'].summary()}")
        print(f"cache: hits={cache.hits} misses={cache.misses} "
              f"hit_rate={cache.hit_rate():.1%}")
        print()
    if failed:
        print(f"{len(failed)} of {len(summaries)} deck(s) failed "
              f"(on_error={args.on_error}):", file=sys.stderr)
        for summary in failed:
            print(f"  {summary.path}: {summary.error}", file=sys.stderr)
    return 0


def _cmd_generate(args) -> int:
    from .geometry import ModelParameterGenerator, default_reference

    generator = ModelParameterGenerator(reference=default_reference())
    for shape in args.shapes:
        print(generator.model_card(shape))
    return 0


def _cmd_select(args) -> int:
    from .geometry import (
        ModelParameterGenerator,
        default_reference,
        shape_for_current,
    )
    from .units import parse_value

    generator = ModelParameterGenerator(reference=default_reference())
    ic = parse_value(args.current)
    selection = shape_for_current(ic, generator)
    print(selection.table())
    print(f"-> {selection.best.name}")
    return 0


def _cmd_shapes(args) -> int:
    from .geometry import FIG8_SHAPES, TransistorShape, layout_report

    print(f"{'key':4s} {'shape':12s} {'AE um2':>8s} {'PE um':>7s} "
          f"{'RB ohm':>8s} {'RE ohm':>7s} {'RC ohm':>7s} {'XCJC':>6s}")
    for key, name in FIG8_SHAPES.items():
        geo = layout_report(TransistorShape.from_name(name))
        print(f"({key})  {name:12s} {geo.emitter_area:8.2f} "
              f"{geo.emitter_perimeter:7.2f} {geo.rb_total:8.1f} "
              f"{geo.re_ohmic:7.2f} {geo.rc_ohmic:7.1f} {geo.xcjc:6.3f}")
    return 0


def _cmd_optimize(args) -> int:
    from .optimize import run_optimize_flow

    if args.jobs == "auto":
        executor = "auto"
    elif args.jobs:
        executor = "process"
    else:
        executor = None
    report = run_optimize_flow(
        irr_target_db=args.irr_target,
        gain_corner=args.gain_corner,
        conversion_gain_db=args.gain_target,
        executor=executor,
        jobs=args.jobs,
        seed=args.seed,
        population=args.population,
        generations=args.generations,
    )
    print(report.summary())
    return 0 if report.closed else 1


def _cmd_verify(args) -> int:
    from .sweep import ResultCache
    from .verify import (
        DEFAULT_STRESS_RULES,
        default_corners,
        default_measurements,
        load_stress_rules,
        qualify_deck,
    )

    path = Path(args.target)
    if path.exists():
        deck = path.read_text()
        name = path.stem
    else:
        from .celldb.seed import seed_database

        cells = {c.name: c for c in seed_database().cells()}
        cell = cells.get(args.target) or cells.get(args.target.upper())
        if cell is None:
            raise ReproError(
                f"{args.target!r} is neither a deck file nor a seeded "
                f"cell; cells: {', '.join(sorted(cells))}"
            )
        if not cell.schematic.strip():
            raise ReproError(
                f"cell {cell.name!r} has no transistor-level schematic "
                "to qualify"
            )
        deck = cell.schematic
        name = cell.name

    rules = (load_stress_rules(Path(args.rules)) if args.rules
             else DEFAULT_STRESS_RULES)
    corners = default_corners(
        deck,
        temperatures_c=tuple(args.temps),
        supply_tol=args.supply_tol,
        passive_tol=args.passive_tol,
    )
    if args.jobs == "auto":
        executor = "auto"
    elif args.jobs:
        executor = "process"
    else:
        executor = None
    stats_sink: dict = {}
    cache = ResultCache()
    report = qualify_deck(
        deck, corners, default_measurements(deck),
        name=name, rules=rules,
        executor=executor, jobs=args.jobs,
        cache=cache, on_error=args.on_error,
        stats_sink=stats_sink,
    )
    if args.json:
        text = report.to_json()
        if args.json == "-":
            print(text, end="")
        else:
            Path(args.json).write_text(text)
            print(f"report written to {args.json}")
    if args.json != "-":
        print(report.table())
    if args.profile and "sweep" in stats_sink:
        print(f"dispatch: {stats_sink['sweep'].summary()}")
        print(f"cache: hits={cache.hits} misses={cache.misses} "
              f"hit_rate={cache.hit_rate():.1%}")
    return 0 if report.passed() else 1


def _cmd_serve(args) -> int:
    from .service import SimulationService
    from .service.http import ServiceHTTPServer

    service = SimulationService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        sweep_jobs=args.jobs,
    )
    server = ServiceHTTPServer((args.host, args.port), service,
                               verbose=args.verbose)
    print(f"repro service listening on http://{args.host}:{server.port} "
          f"({args.workers} worker(s), queue limit {args.queue_limit})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        if args.profile:
            print()
            print(service.profile_summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analog HF IC design methodology toolkit (DAC 1996 "
                    "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser(
        "run", help="execute one or more SPICE decks"
    )
    run_cmd.add_argument("decks", nargs="+", metavar="deck",
                         help="path(s) to deck files")
    run_cmd.add_argument(
        "--profile", action="store_true",
        help="print per-analysis engine statistics after the summary",
    )
    run_cmd.add_argument(
        "--engine",
        choices=("compiled", "legacy", "auto", "dense", "sparse"),
        default=None,
        help="evaluation engine: compiled/legacy, or force the compiled "
             "engine's assembly backend (auto/dense/sparse; default: the "
             "deck's .OPTIONS SOLVER=, else auto)",
    )
    run_cmd.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="run decks in parallel on N worker processes, or 'auto' to "
             "let the dispatch cost model choose",
    )
    run_cmd.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        dest="on_error",
        help="failure policy: abort on the first failing deck (raise, "
             "default), report and continue (skip), or retry "
             "non-convergent decks before reporting (retry)",
    )
    run_cmd.set_defaults(handler=_cmd_run)

    generate_cmd = commands.add_parser(
        "generate", help="emit geometry-generated .MODEL cards"
    )
    generate_cmd.add_argument("shapes", nargs="+",
                              help="shape names, e.g. N1.2-12D")
    generate_cmd.set_defaults(handler=_cmd_generate)

    shapes_cmd = commands.add_parser(
        "shapes", help="print the Fig. 8 shape taxonomy report"
    )
    shapes_cmd.set_defaults(handler=_cmd_shapes)

    select_cmd = commands.add_parser(
        "select", help="rank transistor shapes for an operating current"
    )
    select_cmd.add_argument("current",
                            help="collector current, e.g. 4m or 2.5e-3")
    select_cmd.set_defaults(handler=_cmd_select)

    optimize_cmd = commands.add_parser(
        "optimize",
        help="run the spec-driven top-down optimization loop",
    )
    optimize_cmd.add_argument(
        "--irr-target", type=float, default=30.0, dest="irr_target",
        metavar="DB", help="system image-rejection target (default 30 dB)",
    )
    optimize_cmd.add_argument(
        "--gain-corner", type=float, default=0.01, dest="gain_corner",
        metavar="FRAC",
        help="gain-balance corner for spec derivation (default 0.01)",
    )
    optimize_cmd.add_argument(
        "--gain-target", type=float, default=12.0, dest="gain_target",
        metavar="DB",
        help="mixer conversion-gain requirement (default 12 dB)",
    )
    optimize_cmd.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="fan sweep and sizing evaluations over N worker processes, "
             "or 'auto' to let the dispatch cost model choose",
    )
    optimize_cmd.add_argument(
        "--seed", type=int, default=0,
        help="optimizer seed (same seed -> bit-identical result on any "
             "executor)",
    )
    optimize_cmd.add_argument(
        "--population", type=int, default=12, metavar="NP",
        help="differential-evolution population size (default 12)",
    )
    optimize_cmd.add_argument(
        "--generations", type=int, default=25, metavar="NG",
        help="differential-evolution generation budget (default 25)",
    )
    optimize_cmd.set_defaults(handler=_cmd_optimize)

    verify_cmd = commands.add_parser(
        "verify",
        help="qualify a deck or seeded cell across corners "
             "(docs/verification.md); exits 1 on FAIL",
    )
    verify_cmd.add_argument(
        "target",
        help="path to a SPICE deck, or the name of a seeded cell "
             "(e.g. UPMIX-1300)",
    )
    verify_cmd.add_argument(
        "--temps", type=float, nargs="+", default=(-20.0, 27.0, 85.0),
        metavar="C", help="temperature corners in Celsius "
                          "(default: -20 27 85)",
    )
    verify_cmd.add_argument(
        "--supply-tol", type=float, default=0.1, dest="supply_tol",
        metavar="FRAC",
        help="supply-voltage relative tolerance (default 0.1)",
    )
    verify_cmd.add_argument(
        "--passive-tol", type=float, default=0.1, dest="passive_tol",
        metavar="FRAC",
        help="resistor-scale relative tolerance (default 0.1; 0 drops "
             "the axis)",
    )
    verify_cmd.add_argument(
        "--rules", default=None, metavar="PATH",
        help="JSON stress-rules table (default: built-in ratings)",
    )
    verify_cmd.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="fan corners over N worker processes, or 'auto' to let the "
             "dispatch cost model choose",
    )
    verify_cmd.add_argument(
        "--on-error", choices=("raise", "skip", "retry"),
        default="retry", dest="on_error",
        help="non-convergent corner policy (default retry; skip/retry "
             "record the corner as failed instead of aborting)",
    )
    verify_cmd.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the report record as JSON ('-' for stdout "
             "instead of the table)",
    )
    verify_cmd.add_argument(
        "--profile", action="store_true",
        help="print dispatch statistics and result-cache hit rate",
    )
    verify_cmd.set_defaults(handler=_cmd_verify)

    serve_cmd = commands.add_parser(
        "serve", help="run the simulation job server (docs/service.md)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8372,
                           help="TCP port (default 8372; 0 picks a free one)")
    serve_cmd.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="job worker threads (default 2)",
    )
    serve_cmd.add_argument(
        "--queue-limit", type=int, default=64, dest="queue_limit",
        metavar="N",
        help="queued-job backpressure limit (default 64); submits beyond "
             "it are rejected with a 503 payload",
    )
    serve_cmd.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="default worker-process count for sweep/optimize jobs, or "
             "'auto' (default: in-process serial evaluation)",
    )
    serve_cmd.add_argument(
        "--profile", action="store_true",
        help="print the service stats digest on shutdown",
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true",
        help="log each HTTP request to stderr",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Transistor-level Gilbert mixer cell and conversion-gain measurement.

The cell database's ``DNMIX-45``/``UPMIX-1300`` entries describe Gilbert
cores; this module builds the real circuit on the SPICE engine and
measures its conversion gain by transient simulation + Fourier analysis
of the IF output — the transistor-level counterpart of the behavioral
:class:`~repro.behavioral.blocks.Mixer`, and the missing piece for
mixed-level refinement of frequency-translating blocks.

Theory anchor: with the switching quad fully commutated, the voltage
conversion gain of a resistively loaded Gilbert cell is
``(2/pi) * gm * RL`` with ``gm`` the RF pair's transconductance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..devices.parameters import GummelPoonParameters
from ..errors import AnalysisError
from ..spice import Circuit, Simulator
from ..spice.fourier import fourier_of_waveform
from ..spice.elements import (
    BJT,
    Capacitor,
    CurrentSource,
    Resistor,
    Sine,
    VoltageSource,
)


@dataclass(frozen=True)
class GilbertMixerSpec:
    """Electrical configuration of the double-balanced mixer."""

    vcc: float = 5.0
    load_resistance: float = 500.0
    tail_current: float = 2e-3
    rf_bias: float = 1.6  #: RF pair base common mode
    lo_bias: float = 2.9  #: switching quad base common mode
    lo_amplitude: float = 0.25  #: enough to fully commutate the quad
    rf_amplitude: float = 5e-3  #: small-signal RF drive
    emitter_degeneration: float = 0.0  #: optional RF-pair RE (ohm)

    def __post_init__(self):
        if min(self.vcc, self.load_resistance, self.tail_current,
               self.lo_amplitude, self.rf_amplitude) <= 0:
            raise AnalysisError("mixer spec values must be positive")


def build_gilbert_mixer(
    model: GummelPoonParameters,
    rf_frequency: float,
    lo_frequency: float,
    spec: GilbertMixerSpec | None = None,
) -> Circuit:
    """The classic six-transistor double-balanced mixer.

    RF differential pair (QRF1/QRF2) under a switching quad
    (QSW1..QSW4), resistive loads, differential IF at (ifp, ifn).
    """
    spec = spec or GilbertMixerSpec()
    circuit = Circuit(f"gilbert [{model.name}]")
    circuit.add(VoltageSource("VCC", ("vcc", "0"), dc=spec.vcc))

    # Drives: differential RF and LO around their common modes.
    half_rf = spec.rf_amplitude / 2.0
    circuit.add(VoltageSource(
        "VRFP", ("rfp", "0"),
        dc=Sine(spec.rf_bias, half_rf, rf_frequency)))
    circuit.add(VoltageSource(
        "VRFN", ("rfn", "0"),
        dc=Sine(spec.rf_bias, half_rf, rf_frequency, phase_deg=180.0)))
    half_lo = spec.lo_amplitude / 2.0
    circuit.add(VoltageSource(
        "VLOP", ("lop", "0"),
        dc=Sine(spec.lo_bias, half_lo, lo_frequency)))
    circuit.add(VoltageSource(
        "VLON", ("lon", "0"),
        dc=Sine(spec.lo_bias, half_lo, lo_frequency, phase_deg=180.0)))

    # Loads and the switching quad.
    circuit.add(Resistor("RLP", ("vcc", "ifp"), spec.load_resistance))
    circuit.add(Resistor("RLN", ("vcc", "ifn"), spec.load_resistance))
    circuit.add(BJT("QSW1", ("ifp", "lop", "ca"), model))
    circuit.add(BJT("QSW2", ("ifn", "lon", "ca"), model))
    circuit.add(BJT("QSW3", ("ifn", "lop", "cb"), model))
    circuit.add(BJT("QSW4", ("ifp", "lon", "cb"), model))

    # RF transconductor pair and tail.
    if spec.emitter_degeneration > 0:
        circuit.add(BJT("QRF1", ("ca", "rfp", "ea"), model))
        circuit.add(BJT("QRF2", ("cb", "rfn", "eb"), model))
        circuit.add(Resistor("REA", ("ea", "tail"),
                             spec.emitter_degeneration))
        circuit.add(Resistor("REB", ("eb", "tail"),
                             spec.emitter_degeneration))
    else:
        circuit.add(BJT("QRF1", ("ca", "rfp", "tail"), model))
        circuit.add(BJT("QRF2", ("cb", "rfn", "tail"), model))
    circuit.add(CurrentSource("ITAIL", ("tail", "0"),
                              dc=spec.tail_current))
    return circuit


@dataclass(frozen=True)
class ConversionGainMeasurement:
    """Result of a transient conversion-gain measurement."""

    rf_frequency: float
    lo_frequency: float
    if_frequency: float
    conversion_gain: float  #: linear voltage gain to the IF
    conversion_gain_db: float
    if_amplitude: float
    feedthrough_rf: float  #: residual RF at the output (balance check)
    feedthrough_lo: float  #: residual LO at the output


def measure_conversion_gain(
    model: GummelPoonParameters,
    rf_frequency: float = 210e6,
    lo_frequency: float = 200e6,
    spec: GilbertMixerSpec | None = None,
    if_periods: int = 3,
) -> ConversionGainMeasurement:
    """Transient + Fourier conversion-gain measurement.

    Simulates ``if_periods`` of the difference frequency and reads the
    IF, RF and LO components of the differential output.
    """
    spec = spec or GilbertMixerSpec()
    if_frequency = abs(rf_frequency - lo_frequency)
    if if_frequency == 0:
        raise AnalysisError("RF and LO must differ")
    circuit = build_gilbert_mixer(model, rf_frequency, lo_frequency, spec)
    stop_time = if_periods / if_frequency
    max_step = 1.0 / lo_frequency / 40.0
    result = Simulator(circuit).transient(
        stop_time=stop_time, max_step=max_step,
        initial_step=max_step / 10.0,
    )

    # Differential IF output; Fourier against the IF fundamental.
    differential = result.differential("ifp", "ifn")
    fourier = fourier_of_waveform(result.times, differential, if_frequency,
                                  harmonics=1,
                                  periods=max(1, if_periods - 1))
    if_amplitude = fourier.amplitude(1)

    def component(frequency: float) -> float:
        probe = fourier_of_waveform(result.times, differential, frequency,
                                    harmonics=1, periods=1)
        return probe.amplitude(1)

    gain = if_amplitude / spec.rf_amplitude
    return ConversionGainMeasurement(
        rf_frequency=rf_frequency,
        lo_frequency=lo_frequency,
        if_frequency=if_frequency,
        conversion_gain=gain,
        conversion_gain_db=20.0 * math.log10(max(gain, 1e-12)),
        if_amplitude=if_amplitude,
        feedthrough_rf=component(rf_frequency),
        feedthrough_lo=component(lo_frequency),
    )


def ideal_conversion_gain(model: GummelPoonParameters,
                          spec: GilbertMixerSpec | None = None) -> float:
    """The textbook (2/pi)*gm*RL anchor for the measurement."""
    from ..devices.ft import bias_at_ic

    spec = spec or GilbertMixerSpec()
    op = bias_at_ic(model, spec.tail_current / 2.0, vce=2.0)
    gm = op.gm
    if spec.emitter_degeneration > 0:
        gm = gm / (1.0 + gm * spec.emitter_degeneration)
    return (2.0 / math.pi) * gm * spec.load_resistance

"""Image-rejection mixer: theory and behavioral simulation (paper Fig. 5).

The Fig. 4 architecture (a Hartley image-reject downconverter): the 1st
IF splits into two paths mixed against quadrature 2nd-LO phases; one
2nd-IF path is shifted a further 90 degrees and the paths are summed.
The wanted signal's components add; the image's cancel — *exactly* only
when the two 90-degree shifters are perfect.  Fig. 5 plots the
image-rejection ratio against the phase error with gain balance as a
parameter; this module provides both the closed-form law and the
behavioral-simulation version (which is what the paper's AHDL run did).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

import numpy as np

from ..behavioral import (
    Adder,
    Mixer,
    PhaseShifter,
    Splitter,
    Spectrum,
    SystemModel,
)
from ..errors import DesignError
from .spectrum import FrequencyPlan


def image_rejection_ratio_db(phase_error_deg, gain_error=0.0):
    """Closed-form IRR of a quadrature image-reject mixer.

    With total quadrature phase error ``theta`` and relative gain
    imbalance ``g`` between the two paths:

        IRR = (1 + 2(1+g)cos(theta) + (1+g)^2)
              / (1 - 2(1+g)cos(theta) + (1+g)^2)

    Accepts scalars or numpy arrays and broadcasts them — e.g. a column
    of gain errors against a row of phase errors evaluates the whole
    Fig. 5 grid in one vectorized pass.  Scalar inputs return a
    ``float``; array inputs an ``ndarray``.  Perfect matching gives
    infinite rejection (+inf).
    """
    phase = np.asarray(phase_error_deg, dtype=float)
    gain = np.asarray(gain_error, dtype=float)
    scalar = phase.ndim == 0 and gain.ndim == 0
    ratio = 1.0 + gain
    if np.any(ratio <= 0):
        raise DesignError("gain error must leave a positive path gain")
    cos_theta = np.cos(np.radians(phase))
    numerator = 1.0 + 2.0 * ratio * cos_theta + ratio * ratio
    denominator = 1.0 - 2.0 * ratio * cos_theta + ratio * ratio
    positive = denominator > 0.0
    irr = np.where(
        positive,
        10.0 * np.log10(numerator / np.where(positive, denominator, 1.0)),
        np.inf,
    )
    if scalar:
        return float(irr)
    return irr


@dataclass(frozen=True)
class ImbalanceSpec:
    """The two error sources of Fig. 5.

    ``lo_phase_error_deg`` — quadrature error of the VCO's 90-degree
    splitter; ``if_phase_error_deg`` — error of the 2nd-IF 90-degree
    shifter; ``gain_error`` — fractional gain imbalance between the two
    signal paths (the figure's "gain balance (gain offset)" parameter,
    0.01 = 1 %).
    """

    lo_phase_error_deg: float = 0.0
    if_phase_error_deg: float = 0.0
    gain_error: float = 0.0

    @property
    def total_phase_error_deg(self) -> float:
        """The phase errors add (both rotate one path against the other)."""
        return self.lo_phase_error_deg + self.if_phase_error_deg


def build_image_rejection_mixer(
    lo_frequency: float,
    imbalance: ImbalanceSpec | None = None,
    conversion_gain_db: float = 0.0,
    name: str = "ir_mixer",
) -> SystemModel:
    """The Fig. 4 second converter as a behavioral block graph.

    Nets: input ``if1``, output ``if2``.  Internal nets ``i_rf/q_rf``
    (split 1st IF) and ``i_if/q_if`` (2nd-IF paths before combining).
    """
    imbalance = imbalance or ImbalanceSpec()
    system = SystemModel(name)
    system.add(Splitter("split", 2), inputs=["if1"],
               outputs=["i_rf", "q_rf"])
    system.add(
        Mixer("mix_i", lo_frequency, lo_phase_deg=0.0,
              conversion_gain_db=conversion_gain_db),
        inputs=["i_rf"], outputs=["i_mixed"],
    )
    system.add(
        Mixer("mix_q", lo_frequency,
              lo_phase_deg=90.0 + imbalance.lo_phase_error_deg,
              conversion_gain_db=conversion_gain_db),
        inputs=["q_rf"], outputs=["q_mixed"],
    )
    system.add(
        PhaseShifter("if_shift", shift_deg=90.0,
                     phase_error_deg=imbalance.if_phase_error_deg,
                     gain_error=imbalance.gain_error),
        inputs=["q_mixed"], outputs=["q_shifted"],
    )
    system.add(Adder("combine", 2),
               inputs={"in0": "i_mixed", "in1": "q_shifted"},
               outputs=["if2"])
    return system


def build_weaver_mixer(
    lo1_frequency: float,
    lo2_frequency: float,
    imbalance: ImbalanceSpec | None = None,
    lowpass_cutoff: float | None = None,
    name: str = "weaver_mixer",
) -> SystemModel:
    """The Weaver alternative to the paper's Hartley architecture.

    Instead of a broadband 90-degree IF shifter, Weaver uses a *second*
    quadrature conversion: both paths mix with LO1 (quadrature), are
    low-pass filtered at the intermediate IF, mix again with LO2
    (quadrature), and subtract.  The wanted band lands at
    ``|input - lo1 - lo2|`` with the image cancelled; sensitivity to
    phase/gain imbalance follows the same quadrature law as Hartley,
    but no broadband phase shifter is needed — the trade the paper's
    designers would weigh against Fig. 4.

    ``imbalance`` reuses the same spec: ``lo_phase_error_deg`` applies
    to LO1's quadrature, ``if_phase_error_deg`` to LO2's, and
    ``gain_error`` to the Q path.
    """
    from ..behavioral import LowpassFilter

    imbalance = imbalance or ImbalanceSpec()
    if lowpass_cutoff is None:
        lowpass_cutoff = lo2_frequency * 2.5
    system = SystemModel(name)
    system.add(Splitter("split", 2), inputs=["if1"],
               outputs=["i_rf", "q_rf"])
    system.add(Mixer("mix1_i", lo1_frequency, lo_phase_deg=0.0,
                     conversion_gain_db=0.0),
               inputs=["i_rf"], outputs=["i_mid_raw"])
    system.add(Mixer("mix1_q", lo1_frequency,
                     lo_phase_deg=90.0 + imbalance.lo_phase_error_deg,
                     conversion_gain_db=0.0),
               inputs=["q_rf"], outputs=["q_mid_raw"])
    system.add(LowpassFilter("lpf_i", lowpass_cutoff, 5),
               inputs=["i_mid_raw"], outputs=["i_mid"])
    system.add(LowpassFilter("lpf_q", lowpass_cutoff, 5),
               inputs=["q_mid_raw"], outputs=["q_mid"])
    system.add(Mixer("mix2_i", lo2_frequency, lo_phase_deg=0.0,
                     conversion_gain_db=0.0),
               inputs=["i_mid"], outputs=["i_out"])
    system.add(Mixer("mix2_q", lo2_frequency,
                     lo_phase_deg=90.0 + imbalance.if_phase_error_deg,
                     conversion_gain_db=0.0),
               inputs=["q_mid"], outputs=["q_out_raw"])
    system.add(PhaseShifter("balance", shift_deg=180.0,
                            gain_error=imbalance.gain_error),
               inputs=["q_out_raw"], outputs=["q_out"])
    system.add(Adder("combine", 2),
               inputs={"in0": "i_out", "in1": "q_out"},
               outputs=["if2"])
    return system


def simulate_weaver_image_rejection_db(
    imbalance: ImbalanceSpec,
    plan: FrequencyPlan | None = None,
    second_if: float = 10.7e6,
) -> float:
    """IRR of the Weaver converter on the tuner's frequency plan.

    Downconverts the 1.3 GHz first IF to ``second_if`` in two quadrature
    steps (intermediate IF = 45 MHz, as in the Hartley plan) and
    compares wanted vs image leakage.
    """
    plan = plan or FrequencyPlan()
    lo1 = plan.down_lo  # wanted lands at 45 MHz intermediate
    lo2 = plan.second_if - second_if
    if lo2 <= 0:
        raise DesignError("second_if must lie below the intermediate IF")
    system = build_weaver_mixer(lo1, lo2, imbalance,
                                lowpass_cutoff=plan.second_if * 2.0)
    wanted_out = system.run(
        {"if1": Spectrum.tone(plan.first_if_wanted, 1.0)}
    )["if2"]
    image_out = system.run(
        {"if1": Spectrum.tone(plan.first_if_image, 1.0)}
    )["if2"]
    wanted_power = wanted_out.power(second_if)
    image_power = image_out.power(second_if)
    if image_power == 0.0:
        return math.inf
    return 10.0 * math.log10(wanted_power / image_power)


def simulate_image_rejection_db(
    imbalance: ImbalanceSpec,
    plan: FrequencyPlan | None = None,
    amplitude: float = 1.0,
) -> float:
    """Behavioral-simulation IRR: wanted and image tones run separately.

    Feeds rf1 (wanted) and rf2 (image) through the Fig. 4 mixer one at a
    time and compares the 45 MHz output powers — the same experiment the
    paper ran in AHDL for Fig. 5.
    """
    plan = plan or FrequencyPlan()
    system = build_image_rejection_mixer(plan.down_lo, imbalance)

    wanted_in = Spectrum.tone(plan.first_if_wanted, amplitude)
    image_in = Spectrum.tone(plan.first_if_image, amplitude)
    wanted_out = system.run({"if1": wanted_in})["if2"]
    image_out = system.run({"if1": image_in})["if2"]

    wanted_power = wanted_out.power(plan.second_if)
    image_power = image_out.power(plan.second_if)
    if image_power == 0.0:
        return math.inf
    return 10.0 * math.log10(wanted_power / image_power)


def _fig5_point(params: dict, plan: FrequencyPlan | None = None) -> float:
    """One simulated Fig. 5 grid point (module-level so it pickles for
    the process-pool executor)."""
    return simulate_image_rejection_db(
        ImbalanceSpec(if_phase_error_deg=params["phase"],
                      gain_error=params["gain"]),
        plan=plan,
    )


def fig5_sweep(
    phase_errors_deg,
    gain_errors=(0.01, 0.03, 0.05, 0.07, 0.09),
    plan: FrequencyPlan | None = None,
    simulated: bool = True,
    executor=None,
    jobs: int | None = None,
    cache=None,
    on_error: str = "raise",
) -> dict[float, list[tuple[float, float]]]:
    """The Fig. 5 family: IRR vs phase error for each gain balance.

    Returns ``{gain_error: [(phase_error_deg, irr_db), ...]}`` using the
    behavioral simulation (default) or the closed form.  The closed form
    evaluates the whole grid as one broadcast
    :func:`image_rejection_ratio_db` call; the behavioral simulation
    dispatches the grid through :func:`repro.sweep.run_sweep`, so
    ``executor``/``jobs`` parallelize it and ``cache`` skips points a
    previous sweep already simulated.  ``on_error="skip"``/``"retry"``
    degrades gracefully on point failures: failed grid entries carry
    ``None`` instead of aborting the whole figure.
    """
    phases = [float(p) for p in phase_errors_deg]
    gains = [float(g) for g in gain_errors]
    if not simulated:
        grid_irr = image_rejection_ratio_db(
            np.asarray(phases)[None, :], np.asarray(gains)[:, None]
        )
        return {
            gain: [(phase, float(irr)) for phase, irr in zip(phases, row)]
            for gain, row in zip(gains, grid_irr)
        }

    from ..sweep import ParameterGrid, run_sweep

    grid = ParameterGrid({"gain": gains, "phase": phases})
    result = run_sweep(
        functools.partial(_fig5_point, plan=plan),
        grid,
        executor=executor,
        jobs=jobs,
        cache=cache,
        on_error=on_error,
    )
    values = iter(result.values)
    return {
        gain: [(phase, next(values)) for phase in phases]
        for gain in gains
    }


def fig5_sweep_result(
    phase_errors_deg,
    gain_errors=(0.01, 0.03, 0.05, 0.07, 0.09),
    plan: FrequencyPlan | None = None,
    executor=None,
    jobs: int | None = None,
    cache=None,
    on_error: str = "raise",
):
    """The Fig. 5 grid as a raw :class:`~repro.sweep.SweepResult`.

    Same behavioral simulation as :func:`fig5_sweep`, but returning the
    sweep engine's result object (points carry ``gain``/``phase``
    parameters) instead of the plotted family — the form
    :func:`repro.optimize.derive.derive_image_rejection_specs` inverts
    to automate the paper's spec read-off.
    """
    from ..sweep import ParameterGrid, run_sweep

    grid = ParameterGrid({
        "gain": [float(g) for g in gain_errors],
        "phase": [float(p) for p in phase_errors_deg],
    })
    return run_sweep(
        functools.partial(_fig5_point, plan=plan),
        grid,
        executor=executor,
        jobs=jobs,
        cache=cache,
        on_error=on_error,
    )


def required_matching(irr_target_db: float,
                      gain_error: float) -> float | None:
    """Largest phase error meeting an IRR target at a given gain error.

    This is the designer's read of Fig. 5 in the paper: "assume that a
    system designer requests an image rejection ratio of 30 dB", then
    pick the (gain, phase) spec pair.  Returns None when the gain error
    alone already violates the target.
    """
    if image_rejection_ratio_db(0.0, gain_error) < irr_target_db:
        return None
    low, high = 0.0, 90.0
    for _ in range(60):
        mid = (low + high) / 2.0
        if image_rejection_ratio_db(mid, gain_error) >= irr_target_db:
            low = mid
        else:
            high = mid
    return low

"""First-IF filter feasibility arithmetic (the paper's motivation).

Section 2.2: rejecting the image "in the 1st IF of the tuner [is] very
difficult because it requires a very narrow band pass filter".  This
module quantifies that sentence: given a Butterworth band-pass at the
1.3 GHz first IF, how much rejection does it give 90 MHz away — and
what order or bandwidth would the *filter-only* (Fig. 2) tuner need to
meet a spec that the image-rejection mixer (Fig. 4) meets with relaxed
filtering?

Butterworth band-pass attenuation at offset ``f`` from center ``f0``
with bandwidth ``B`` and order ``n``:

    |H|^2 = 1 / (1 + x^(2n)),   x = (f/f0 - f0/f) * f0/B
"""

from __future__ import annotations

import math

from ..errors import DesignError
from .spectrum import FrequencyPlan


def butterworth_rejection_db(
    center: float, bandwidth: float, order: int, frequency: float
) -> float:
    """Stop-band rejection (positive dB) of a Butterworth band-pass."""
    if center <= 0 or bandwidth <= 0 or order < 1 or frequency <= 0:
        raise DesignError("bad filter parameters")
    x = abs(frequency / center - center / frequency) * center / bandwidth
    return 10.0 * math.log10(1.0 + x ** (2 * order))


def order_for_rejection(
    center: float, bandwidth: float, frequency: float, target_db: float,
    max_order: int = 20,
) -> int | None:
    """Smallest Butterworth order reaching ``target_db`` at ``frequency``.

    Returns None when even ``max_order`` is not enough (the offset lies
    inside or too close to the passband).
    """
    for order in range(1, max_order + 1):
        if butterworth_rejection_db(center, bandwidth, order,
                                    frequency) >= target_db:
            return order
    return None


def bandwidth_for_rejection(
    center: float, order: int, frequency: float, target_db: float
) -> float:
    """Largest bandwidth meeting ``target_db`` at ``frequency``.

    Inverts the Butterworth law: x = (10^(A/10) - 1)^(1/2n), then
    B = |f/f0 - f0/f| * f0 / x.
    """
    if target_db <= 0:
        raise DesignError("target rejection must be positive dB")
    x = (10.0 ** (target_db / 10.0) - 1.0) ** (1.0 / (2 * order))
    offset = abs(frequency / center - center / frequency) * center
    return offset / x


def filter_only_feasibility(
    target_irr_db: float,
    plan: FrequencyPlan | None = None,
    order: int = 3,
    channel_bandwidth: float = 6e6,
    max_practical_q: float = 25.0,
) -> dict[str, float | bool]:
    """Can the Fig. 2 (filter-only) tuner meet an IRR target at all?

    Computes the 1st-IF bandwidth a Butterworth of the given order would
    need to reject the image at ``rf2`` by ``target_irr_db``, the
    resonator quality factor ``Q = f0/B`` that bandwidth implies at
    1.3 GHz, and whether the filter is realizable: it must still pass a
    television channel AND stay below the practical Q of the era's
    filter technology.  This is the quantified version of the paper's
    "it requires a very narrow band pass filter".
    """
    plan = plan or FrequencyPlan()
    required_bw = bandwidth_for_rejection(
        plan.first_if, order, plan.first_if_image, target_irr_db
    )
    required_q = plan.first_if / required_bw
    passes_channel = required_bw >= channel_bandwidth
    realizable_q = required_q <= max_practical_q
    return {
        "target_irr_db": target_irr_db,
        "image_offset_hz": abs(plan.first_if - plan.first_if_image),
        "required_bandwidth_hz": required_bw,
        "fractional_bandwidth": required_bw / plan.first_if,
        "required_q": required_q,
        "passes_channel": passes_channel,
        "realizable_q": realizable_q,
        "feasible": passes_channel and realizable_q,
        "order": order,
    }

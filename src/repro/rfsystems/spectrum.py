"""Frequency planning for the double-super tuner (paper Figs. 2 and 3).

The CATV double-super plan of the paper:

* RF input band 90-770 MHz,
* 1st IF at 1.3 GHz (up-conversion, high-side LO ``Fup = RF + 1.3 GHz``),
* 2nd IF at 45 MHz (down-conversion with ``Fdown`` below the 1st IF).

The 2nd conversion has an image: a 1st-IF component at
``rf2 = 2*Fdown - rf1`` lands on the same 45 MHz output
(``rf2 - Fdown = Fdown - rf1``).  Referred to the antenna, that image is
only ``2 * second_if = 90 MHz`` away from the tuned channel — an
in-band CATV channel — which is why the paper says rejecting it with
the 1st-IF band-pass filter alone "requires a very narrow band pass
filter" and introduces the image-rejection mixer (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError


@dataclass(frozen=True)
class FrequencyPlan:
    """The double-super tuner frequency plan."""

    rf_min: float = 90e6
    rf_max: float = 770e6
    first_if: float = 1.3e9
    second_if: float = 45e6

    def __post_init__(self):
        if not 0 < self.rf_min < self.rf_max:
            raise DesignError("RF band must satisfy 0 < rf_min < rf_max")
        if self.first_if <= self.rf_max:
            raise DesignError("up-conversion needs first_if above the RF band")
        if not 0 < self.second_if < self.first_if:
            raise DesignError("second_if must lie below first_if")

    # -- first conversion --------------------------------------------------------

    def check_rf(self, rf: float) -> float:
        if not self.rf_min <= rf <= self.rf_max:
            raise DesignError(
                f"RF {rf / 1e6:.1f} MHz outside the plan's band "
                f"[{self.rf_min / 1e6:.0f}, {self.rf_max / 1e6:.0f}] MHz"
            )
        return rf

    def up_lo(self, rf: float) -> float:
        """1st LO frequency Fup tuning channel ``rf`` to the 1st IF."""
        return self.check_rf(rf) + self.first_if

    # -- second conversion ----------------------------------------------------------

    @property
    def down_lo(self) -> float:
        """2nd LO frequency Fdown (low-side injection)."""
        return self.first_if - self.second_if

    @property
    def first_if_wanted(self) -> float:
        """rf1: the wanted 1st-IF component."""
        return self.first_if

    @property
    def first_if_image(self) -> float:
        """rf2: the 1st-IF image of the second conversion."""
        return 2.0 * self.down_lo - self.first_if

    @property
    def image_spacing(self) -> float:
        """rf1 - rf2 = 2 * second_if (the paper's 90 MHz)."""
        return self.first_if_wanted - self.first_if_image

    def rf_image(self, rf: float) -> float:
        """RF2: the second-conversion image referred to the antenna.

        ``Fup - rf2``; it lies ``2*second_if`` below... above the tuned
        channel when the first conversion is high-side and the second
        low-side: ``RF2 = RF + 2*second_if``.
        """
        return self.up_lo(rf) - self.first_if_image

    def image_offset(self, rf: float) -> float:
        """RF2 - RF1 (Hz)."""
        return self.rf_image(rf) - rf

    def describe(self, rf: float) -> dict[str, float]:
        """All plan frequencies for one tuned channel (for reports)."""
        return {
            "rf": self.check_rf(rf),
            "rf_image": self.rf_image(rf),
            "up_lo": self.up_lo(rf),
            "first_if": self.first_if_wanted,
            "first_if_image": self.first_if_image,
            "down_lo": self.down_lo,
            "second_if": self.second_if,
        }

"""The paper's Fig. 11 five-stage differential ring oscillator.

Each stage is an ECL-style differential pair (Q1/Q2 ... Q17/Q18 in the
paper's schematic) with resistive collector loads and emitter-follower
output buffers (Q3/Q4 per stage), biased by tail current sources
(I1...I5).  Since every stage inverts the differential signal, a
straight five-stage loop has odd net inversion and free-runs.

Table 1 of the paper sweeps the *shape* of the differential-pair
transistors (Q1, Q2, Q5, Q6, ... Q18) uniformly while the topology and
currents stay fixed, and reads off the free-running frequency — this
module reproduces exactly that experiment on the
:mod:`repro.spice` simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..devices.parameters import GummelPoonParameters
from ..errors import AnalysisError
from ..spice import Circuit, Simulator, TransientResult
from ..spice.elements import BJT, CurrentSource, Pulse, Resistor, VoltageSource


@dataclass(frozen=True)
class RingOscillatorSpec:
    """Electrical configuration of the Fig. 11 oscillator.

    The paper fixes topology and currents ("the circuit topology and the
    current values were fixed, and only the shapes of the transistors at
    differential pairs were optimized").
    """

    stages: int = 5
    vcc: float = 5.0
    load_resistance: float = 220.0  #: R1/R2 collector loads (ohm)
    tail_current: float = 4.0e-3  #: I1..I5 (A)
    follower_current: float = 1.5e-3  #: emitter-follower pulldown (A)
    follower_resistance: float | None = None  #: use R3/R4 instead of sources

    def __post_init__(self):
        if self.stages < 3 or self.stages % 2 == 0:
            raise AnalysisError("ring needs an odd stage count >= 3")
        if min(self.vcc, self.load_resistance, self.tail_current,
               self.follower_current) <= 0:
            raise AnalysisError("ring spec values must be positive")

    @property
    def logic_swing(self) -> float:
        """Single-ended collector swing (V)."""
        return self.load_resistance * self.tail_current


def differential_pair_names(stages: int = 5) -> list[str]:
    """The diff-pair device names whose shape Table 1 sweeps (QS<k>A/B)."""
    names = []
    for k in range(stages):
        names.extend([f"QS{k}A", f"QS{k}B"])
    return names


def build_ring_oscillator(
    pair_model: GummelPoonParameters,
    follower_model: GummelPoonParameters | None = None,
    spec: RingOscillatorSpec | None = None,
    kick: bool = True,
) -> Circuit:
    """Construct the Fig. 11 circuit.

    ``pair_model`` models the differential-pair transistors (the ones
    Table 1 re-shapes); ``follower_model`` the emitter followers
    (defaults to the pair model, as in the paper where all devices share
    the chosen shape... the paper sweeps only Q1/Q2-class devices, so
    pass a fixed follower model to reproduce Table 1 strictly).
    """
    spec = spec or RingOscillatorSpec()
    follower_model = follower_model or pair_model
    circuit = Circuit(f"ring{spec.stages} [{pair_model.name}]")
    circuit.add(VoltageSource("VCC", ("vcc", "0"), dc=spec.vcc))
    for k in range(spec.stages):
        prev = (k - 1) % spec.stages
        in_p, in_n = f"s{prev}p", f"s{prev}n"
        c_p, c_n = f"c{k}p", f"c{k}n"
        out_p, out_n = f"s{k}p", f"s{k}n"
        tail = f"e{k}"
        circuit.add(Resistor(f"RL{k}P", ("vcc", c_p), spec.load_resistance))
        circuit.add(Resistor(f"RL{k}N", ("vcc", c_n), spec.load_resistance))
        circuit.add(BJT(f"QS{k}A", (c_p, in_p, tail), pair_model))
        circuit.add(BJT(f"QS{k}B", (c_n, in_n, tail), pair_model))
        circuit.add(CurrentSource(f"IT{k}", (tail, "0"), dc=spec.tail_current))
        circuit.add(BJT(f"QF{k}P", ("vcc", c_p, out_p), follower_model))
        circuit.add(BJT(f"QF{k}N", ("vcc", c_n, out_n), follower_model))
        if spec.follower_resistance is not None:
            circuit.add(Resistor(f"RF{k}P", (out_p, "0"),
                                 spec.follower_resistance))
            circuit.add(Resistor(f"RF{k}N", (out_n, "0"),
                                 spec.follower_resistance))
        else:
            circuit.add(CurrentSource(f"IF{k}P", (out_p, "0"),
                                      dc=spec.follower_current))
            circuit.add(CurrentSource(f"IF{k}N", (out_n, "0"),
                                      dc=spec.follower_current))
    if kick:
        # Break the metastable symmetric DC state with a short current pulse.
        kick_current = spec.tail_current / 2.0
        circuit.add(CurrentSource(
            "IKICK", ("c0p", "0"),
            dc=Pulse(0.0, kick_current, delay=10e-12, rise=5e-12,
                     width=150e-12, fall=5e-12, period=1.0),
        ))
    return circuit


@dataclass
class OscillationMeasurement:
    """Free-running frequency extracted from a transient waveform."""

    frequency: float  #: Hz (0.0 when no oscillation was detected)
    period: float  #: s
    amplitude: float  #: differential amplitude (V)
    crossings: int  #: rising zero-crossings used
    result: TransientResult = field(repr=False, default=None)

    @property
    def oscillating(self) -> bool:
        return self.frequency > 0.0 and self.crossings >= 3


def measure_frequency(
    result: TransientResult,
    node_p: str = "s0p",
    node_n: str = "s0n",
    settle_fraction: float = 0.5,
) -> OscillationMeasurement:
    """Extract frequency from rising zero-crossings of the differential
    output, ignoring the first ``settle_fraction`` of the record."""
    times = result.times
    signal = result.differential(node_p, node_n)
    mask = times >= times[-1] * settle_fraction
    t, v = times[mask], signal[mask]
    amplitude = float((v.max() - v.min()) / 2.0) if len(v) else 0.0
    crossings: list[float] = []
    for i in range(1, len(t)):
        if v[i - 1] < 0.0 <= v[i]:
            frac = -v[i - 1] / (v[i] - v[i - 1])
            crossings.append(t[i - 1] + frac * (t[i] - t[i - 1]))
    if len(crossings) < 2 or amplitude < 1e-3:
        return OscillationMeasurement(0.0, math.inf, amplitude,
                                      len(crossings), result)
    period = float(np.mean(np.diff(crossings)))
    return OscillationMeasurement(1.0 / period, period, amplitude,
                                  len(crossings), result)


def run_ring_oscillator(
    pair_model: GummelPoonParameters,
    follower_model: GummelPoonParameters | None = None,
    spec: RingOscillatorSpec | None = None,
    stop_time: float = 12e-9,
    max_step: float = 10e-12,
) -> OscillationMeasurement:
    """Build, simulate and measure the Fig. 11 oscillator in one call."""
    circuit = build_ring_oscillator(pair_model, follower_model, spec)
    simulator = Simulator(circuit)
    result = simulator.transient(
        stop_time=stop_time, max_step=max_step, initial_step=1e-12
    )
    return measure_frequency(result)


def estimate_frequency_from_delay(
    pair_model: GummelPoonParameters,
    spec: RingOscillatorSpec | None = None,
) -> float:
    """First-order analytic estimate: f = 1 / (2 * N * td).

    The stage delay is approximated by the RC time constant of the load
    resistor driving the next stage's input capacitance plus the
    transistor transit delay at the operating current.  Used as a sanity
    cross-check on the transient measurement, not as the reported value.
    """
    from ..devices.ft import bias_at_ic

    spec = spec or RingOscillatorSpec()
    op = bias_at_ic(pair_model, spec.tail_current / 2.0,
                    vce=spec.vcc - spec.logic_swing)
    c_load = op.cpi + 2.0 * op.cmu  # Miller-doubled feedback cap
    stage_delay = 0.69 * spec.load_resistance * c_load + op.cpi / op.gm
    return 1.0 / (2.0 * spec.stages * stage_delay)

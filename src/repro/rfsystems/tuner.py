"""Double-super tuner system models (paper Figs. 2 and 4).

Two variants of the CATV set-top tuner:

* :func:`build_conventional_tuner` — Fig. 2: RF amp, up-conversion to the
  1.3 GHz 1st IF, band-pass filter, single down-conversion to 45 MHz.
  Its image rejection relies entirely on the 1st-IF BPF.
* :func:`build_image_rejection_tuner` — Fig. 4: the same front end, but
  the 2nd conversion is the quadrature image-reject mixer with the two
  90-degree shifters whose matching Fig. 5 studies.

Both are behavioral :class:`~repro.behavioral.SystemModel` graphs — what
the paper's AHDL descriptions elaborate to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..behavioral import (
    Adder,
    Amplifier,
    BandpassFilter,
    LowpassFilter,
    Mixer,
    PhaseShifter,
    Splitter,
    Spectrum,
    SystemModel,
)
from ..errors import DesignError
from .image_rejection import ImbalanceSpec
from .spectrum import FrequencyPlan


@dataclass(frozen=True)
class TunerConfig:
    """Electrical configuration of the tuner chain."""

    plan: FrequencyPlan = FrequencyPlan()
    rf_gain_db: float = 15.0
    mixer1_gain_db: float = -6.0
    if1_filter_bandwidth: float = 60e6
    if1_filter_order: int = 3
    mixer2_gain_db: float = 0.0
    if2_filter_cutoff: float = 70e6
    if2_filter_order: int = 3

    def __post_init__(self):
        if self.if1_filter_bandwidth <= 0:
            raise DesignError("1st IF filter bandwidth must be positive")


def build_conventional_tuner(
    rf: float,
    config: TunerConfig | None = None,
) -> SystemModel:
    """Fig. 2 tuner tuned to channel ``rf``; input net ``rf``, output ``if2``."""
    config = config or TunerConfig()
    plan = config.plan
    system = SystemModel("double_super_tuner")
    system.chain(
        [
            Amplifier("rf_amp", gain_db=config.rf_gain_db),
            Mixer("mix1", plan.up_lo(rf),
                  conversion_gain_db=config.mixer1_gain_db),
            BandpassFilter("if1_bpf", plan.first_if,
                           config.if1_filter_bandwidth,
                           config.if1_filter_order),
            Mixer("mix2", plan.down_lo,
                  conversion_gain_db=config.mixer2_gain_db),
            LowpassFilter("if2_lpf", config.if2_filter_cutoff,
                          config.if2_filter_order),
        ],
        ["rf", "rf_amp_out", "if1_raw", "if1", "if2_raw", "if2"],
    )
    return system


def build_image_rejection_tuner(
    rf: float,
    imbalance: ImbalanceSpec | None = None,
    config: TunerConfig | None = None,
) -> SystemModel:
    """Fig. 4 tuner: quadrature 2nd conversion with 90-degree shifters."""
    config = config or TunerConfig()
    imbalance = imbalance or ImbalanceSpec()
    plan = config.plan
    system = SystemModel("image_rejection_tuner")
    system.chain(
        [
            Amplifier("rf_amp", gain_db=config.rf_gain_db),
            Mixer("mix1", plan.up_lo(rf),
                  conversion_gain_db=config.mixer1_gain_db),
            BandpassFilter("if1_bpf", plan.first_if,
                           config.if1_filter_bandwidth,
                           config.if1_filter_order),
        ],
        ["rf", "rf_amp_out", "if1_raw", "if1"],
    )
    system.add(Splitter("split", 2), inputs=["if1"],
               outputs=["i_path", "q_path"])
    system.add(
        Mixer("mix2_i", plan.down_lo,
              conversion_gain_db=config.mixer2_gain_db),
        inputs=["i_path"], outputs=["i_mixed"],
    )
    system.add(
        Mixer("mix2_q", plan.down_lo,
              lo_phase_deg=90.0 + imbalance.lo_phase_error_deg,
              conversion_gain_db=config.mixer2_gain_db),
        inputs=["q_path"], outputs=["q_mixed"],
    )
    system.add(
        PhaseShifter("if_shift", shift_deg=90.0,
                     phase_error_deg=imbalance.if_phase_error_deg,
                     gain_error=imbalance.gain_error),
        inputs=["q_mixed"], outputs=["q_shifted"],
    )
    system.add(Adder("combine", 2),
               inputs={"in0": "i_mixed", "in1": "q_shifted"},
               outputs=["if2_raw"])
    system.add(LowpassFilter("if2_lpf", config.if2_filter_cutoff,
                             config.if2_filter_order),
               inputs=["if2_raw"], outputs=["if2"])
    return system


@dataclass(frozen=True)
class TunerPerformance:
    """Measured tuner figures for one channel."""

    rf: float
    wanted_gain_db: float
    image_rejection_db: float
    conversion_output: float  #: wanted-tone amplitude at the 2nd IF


def measure_tuner(
    system: SystemModel,
    rf: float,
    plan: FrequencyPlan | None = None,
    amplitude: float = 1e-3,
) -> TunerPerformance:
    """Drive the tuner with the wanted channel and its image separately.

    Returns the conversion gain to 45 MHz and the image rejection ratio —
    the conventional tuner's IRR is the 1st-IF filter's doing; the Fig. 4
    tuner multiplies that by the quadrature cancellation.
    """
    plan = plan or FrequencyPlan()
    rf_image = plan.rf_image(rf)

    wanted_out = system.run({"rf": Spectrum.tone(rf, amplitude)})["if2"]
    image_out = system.run({"rf": Spectrum.tone(rf_image, amplitude)})["if2"]

    wanted_amp = wanted_out.amplitude(plan.second_if)
    image_amp = image_out.amplitude(plan.second_if)
    if wanted_amp == 0.0:
        raise DesignError("tuner produced no wanted output at the 2nd IF")
    gain_db = 20.0 * math.log10(wanted_amp / amplitude)
    irr_db = (math.inf if image_amp == 0.0
              else 20.0 * math.log10(wanted_amp / image_amp))
    return TunerPerformance(
        rf=rf,
        wanted_gain_db=gain_db,
        image_rejection_db=irr_db,
        conversion_output=wanted_amp,
    )

"""Charge-pump PLL frequency synthesizer (the tuner's ``PLL`` block).

Figs. 2 and 4 show a PLL generating the first local oscillator
``Fup = RF + 1.3 GHz``.  This module models it at the level the
top-down flow needs: the classic second-order charge-pump loop in the
phase domain — loop dynamics (natural frequency, damping, bandwidth,
phase margin), lock-time estimation, phase-noise transfer shapes, and
the integer-N channel arithmetic for the CATV raster.

Loop model (type-2, second order):

    forward gain   G(s) = Kd * F(s) * Kv / s
    Kd = Icp / 2pi [A/rad],  F(s) = R + 1/(sC),  Kv = 2pi*Kvco [rad/s/V]

    wn   = sqrt(Kd*Kv / (N*C)) ,   zeta = R*C*wn / 2
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

from ..errors import DesignError
from .spectrum import FrequencyPlan


@dataclass(frozen=True)
class ChargePumpPLL:
    """A type-2 second-order integer-N charge-pump PLL."""

    reference_frequency: float = 62.5e3  #: CATV channel raster
    charge_pump_current: float = 500e-6  #: Icp (A)
    kvco: float = 25e6  #: VCO gain (Hz/V)
    loop_r: float = 22e3  #: loop-filter resistor (ohm)
    loop_c: float = 10e-9  #: loop-filter capacitor (F)
    divider: int = 24000  #: N (sets fout = N * fref)

    def __post_init__(self):
        if min(self.reference_frequency, self.charge_pump_current,
               self.kvco, self.loop_r, self.loop_c) <= 0:
            raise DesignError("PLL parameters must be positive")
        if self.divider < 1:
            raise DesignError("divider must be >= 1")

    # -- frequency plan -----------------------------------------------------------

    @property
    def output_frequency(self) -> float:
        return self.divider * self.reference_frequency

    def with_divider(self, divider: int) -> "ChargePumpPLL":
        from dataclasses import replace

        return replace(self, divider=divider)

    # -- loop dynamics ---------------------------------------------------------------

    @property
    def phase_detector_gain(self) -> float:
        """Kd in A/rad."""
        return self.charge_pump_current / (2.0 * math.pi)

    @property
    def vco_gain_rad(self) -> float:
        """Kv in rad/s/V."""
        return 2.0 * math.pi * self.kvco

    @property
    def natural_frequency(self) -> float:
        """wn in rad/s."""
        return math.sqrt(
            self.phase_detector_gain * self.vco_gain_rad
            / (self.divider * self.loop_c)
        )

    @property
    def damping(self) -> float:
        """zeta (dimensionless)."""
        return self.loop_r * self.loop_c * self.natural_frequency / 2.0

    @property
    def loop_bandwidth(self) -> float:
        """-3 dB closed-loop bandwidth (Hz), exact 2nd-order formula."""
        zeta = self.damping
        wn = self.natural_frequency
        term = 1.0 + 2.0 * zeta ** 2
        w3 = wn * math.sqrt(term + math.sqrt(term ** 2 + 1.0))
        return w3 / (2.0 * math.pi)

    def open_loop_gain(self, frequency: float) -> complex:
        """G(s)/N at s = j*2*pi*f (the loop gain whose crossover and
        phase margin matter)."""
        if frequency <= 0:
            raise DesignError("frequency must be positive")
        s = 1j * 2.0 * math.pi * frequency
        filter_z = self.loop_r + 1.0 / (s * self.loop_c)
        return (self.phase_detector_gain * filter_z * self.vco_gain_rad
                / (s * self.divider))

    def crossover_frequency(self) -> float:
        """Unity-gain frequency of the loop gain (Hz), by bisection."""
        low, high = 1e-3, 1e12
        for _ in range(200):
            mid = math.sqrt(low * high)
            if abs(self.open_loop_gain(mid)) > 1.0:
                low = mid
            else:
                high = mid
        return math.sqrt(low * high)

    def phase_margin_deg(self) -> float:
        """Phase margin at the loop crossover (degrees)."""
        crossover = self.crossover_frequency()
        phase = math.degrees(cmath.phase(self.open_loop_gain(crossover)))
        return 180.0 + phase

    # -- transient behaviour -------------------------------------------------------------

    def lock_time(self, tolerance: float = 1e-4) -> float:
        """Settling time of a frequency step to ``tolerance`` (relative).

        Standard underdamped estimate t = -ln(tol*sqrt(1-z^2)) / (z*wn);
        for overdamped loops the slow pole dominates.
        """
        zeta = self.damping
        wn = self.natural_frequency
        if zeta < 1.0:
            return (-math.log(tolerance * math.sqrt(1.0 - zeta ** 2))
                    / (zeta * wn))
        slow_pole = wn * (zeta - math.sqrt(zeta ** 2 - 1.0))
        return -math.log(tolerance) / slow_pole

    def phase_step_response(self, time: float) -> float:
        """Normalized phase-error response to a unit phase step.

        e(t) for the type-2 second-order loop; starts at 1, settles to 0.
        """
        if time < 0:
            raise DesignError("time must be non-negative")
        zeta = self.damping
        wn = self.natural_frequency
        if zeta < 1.0:
            wd = wn * math.sqrt(1.0 - zeta ** 2)
            return math.exp(-zeta * wn * time) * (
                math.cos(wd * time)
                - zeta / math.sqrt(1.0 - zeta ** 2) * math.sin(wd * time)
            )
        if zeta == 1.0:
            return math.exp(-wn * time) * (1.0 - wn * time)
        wd = wn * math.sqrt(zeta ** 2 - 1.0)
        return math.exp(-zeta * wn * time) * (
            math.cosh(wd * time)
            - zeta / math.sqrt(zeta ** 2 - 1.0) * math.sinh(wd * time)
        )

    # -- noise transfer -----------------------------------------------------------------

    def reference_noise_transfer(self, frequency: float) -> float:
        """|closed-loop transfer| from reference phase to output phase.

        Lowpass with in-band gain N (reference noise is multiplied by
        the divider) — why large-N synthesizers want narrow loops.
        """
        g = self.open_loop_gain(frequency)
        return abs(self.divider * g / (1.0 + g))

    def vco_noise_transfer(self, frequency: float) -> float:
        """|closed-loop transfer| from VCO phase to output phase.

        Highpass: the loop cleans VCO noise inside the bandwidth.
        """
        g = self.open_loop_gain(frequency)
        return abs(1.0 / (1.0 + g))


def synthesizer_for_channel(
    rf: float,
    plan: FrequencyPlan | None = None,
    pll: ChargePumpPLL | None = None,
) -> ChargePumpPLL:
    """Configure the 1st-LO synthesizer for a tuned channel.

    Picks the divider so ``N * fref`` lands on ``Fup = RF + 1st IF``;
    raises when the channel is off the raster.
    """
    plan = plan or FrequencyPlan()
    pll = pll or ChargePumpPLL()
    target = plan.up_lo(rf)
    divider = target / pll.reference_frequency
    nearest = round(divider)
    if abs(divider - nearest) > 1e-6:
        raise DesignError(
            f"Fup = {target / 1e6:.4f} MHz is off the "
            f"{pll.reference_frequency / 1e3:.1f} kHz raster"
        )
    return pll.with_divider(int(nearest))

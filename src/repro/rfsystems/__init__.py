"""RF system models: tuners, image rejection, ring oscillators."""

from .spectrum import FrequencyPlan
from .image_rejection import (
    ImbalanceSpec,
    build_image_rejection_mixer,
    build_weaver_mixer,
    fig5_sweep,
    fig5_sweep_result,
    image_rejection_ratio_db,
    required_matching,
    simulate_image_rejection_db,
    simulate_weaver_image_rejection_db,
)
from .tuner import (
    TunerConfig,
    TunerPerformance,
    build_conventional_tuner,
    build_image_rejection_tuner,
    measure_tuner,
)
from .filter_design import (
    bandwidth_for_rejection,
    butterworth_rejection_db,
    filter_only_feasibility,
    order_for_rejection,
)
from .mixer_cell import (
    ConversionGainMeasurement,
    GilbertMixerSpec,
    build_gilbert_mixer,
    ideal_conversion_gain,
    measure_conversion_gain,
)
from .pll import ChargePumpPLL, synthesizer_for_channel
from .ring_oscillator import (
    OscillationMeasurement,
    RingOscillatorSpec,
    build_ring_oscillator,
    differential_pair_names,
    estimate_frequency_from_delay,
    measure_frequency,
    run_ring_oscillator,
)

__all__ = [
    "FrequencyPlan",
    "ImbalanceSpec",
    "image_rejection_ratio_db",
    "simulate_image_rejection_db",
    "build_image_rejection_mixer",
    "build_weaver_mixer",
    "simulate_weaver_image_rejection_db",
    "fig5_sweep",
    "fig5_sweep_result",
    "required_matching",
    "TunerConfig",
    "TunerPerformance",
    "build_conventional_tuner",
    "build_image_rejection_tuner",
    "measure_tuner",
    "butterworth_rejection_db",
    "order_for_rejection",
    "bandwidth_for_rejection",
    "filter_only_feasibility",
    "GilbertMixerSpec",
    "ConversionGainMeasurement",
    "build_gilbert_mixer",
    "measure_conversion_gain",
    "ideal_conversion_gain",
    "ChargePumpPLL",
    "synthesizer_for_channel",
    "RingOscillatorSpec",
    "OscillationMeasurement",
    "build_ring_oscillator",
    "run_ring_oscillator",
    "measure_frequency",
    "differential_pair_names",
    "estimate_frequency_from_delay",
]
